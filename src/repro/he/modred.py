"""Barrett and Montgomery modular-reduction forms for the planned backend.

The planned compute backend (:mod:`repro.he.backend`) evaluates NTTs as
dense GEMMs, so its hot accumulators live in *float64* — every value is
an exact integer below 2^53 (dgemm over integer-valued doubles is exact
in that range).  Reducing those accumulators with numpy's ``%`` would
first require an int64 round trip and then pay the slow hardware modulo;
:func:`barrett_reduce` instead estimates the quotient with one float
multiply by the precomputed reciprocal and finishes with exact int64
corrections — the classic Barrett form, specialised to the float-resident
accumulator.

:class:`MontgomeryContext` is the companion Montgomery form (REDC with
R = 2^32 via native uint64 wraparound).  It is the right shape for
substrates whose cheap primitive is a wrapping multiply rather than a
float FMA — a third registered backend targeting such hardware would
build its butterflies on it — and the hypothesis suite pins both forms
against plain ``%`` across the full :class:`~repro.params.PirParams`
modulus range.

Exactness argument for :func:`barrett_reduce` (why the mixed
float/int64 dance cannot be off):

* inputs are integer-valued float64 with ``|x| < 2^53`` — exactly
  representable, no rounding has happened yet;
* ``k = floor(x * (1/q))`` computed in float64 differs from the true
  ``floor(x / q)`` by at most 1 (one rounding of the reciprocal, one of
  the product);
* the remainder ``x - k*q`` is computed **in int64** — ``k*q <= |x| + q``
  can exceed 2^53, where float64 spacing is 2 ulp, so a float multiply
  there could round and silently corrupt the result by ±1;
* with ``k`` off by at most one, the int64 remainder lies in ``(-q, 2q)``
  and a single conditional ``±q`` correction canonicalises it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

#: Largest integer magnitude float64 represents exactly (2^53).
FLOAT64_EXACT_MAX = 1 << 53


def barrett_reduce(acc: np.ndarray, q) -> np.ndarray:
    """Exact ``acc mod q`` for an integer-valued float64 tensor.

    ``acc`` must hold exact integers with ``|acc| < 2^53`` (the caller's
    accumulation bound guarantees this for the GEMM-NTT plans).  Returns
    canonical residues in ``[0, q)`` as int64.

    ``q`` is a scalar modulus or an int64 array broadcastable against
    ``acc`` (e.g. ``(rns, 1)`` against a ``(..., rns, n)`` accumulator),
    so a whole RNS stack reduces in one set of full-tensor passes
    instead of a per-modulus loop over strided slices.
    """
    if isinstance(q, (int, np.integer)):
        if q < 2:
            raise ParameterError(f"modulus {q} must be at least 2")
        if q >= FLOAT64_EXACT_MAX:
            raise ParameterError(
                f"modulus {q} exceeds the float64-exact Barrett range"
            )
        quot = np.floor(acc * (1.0 / q))
    else:
        q = np.asarray(q, dtype=np.int64)
        if np.any(q < 2):
            raise ParameterError("every modulus must be at least 2")
        if np.any(q >= FLOAT64_EXACT_MAX):
            raise ParameterError(
                "a modulus exceeds the float64-exact Barrett range"
            )
        quot = np.floor(acc * (1.0 / q))
    # Both casts are exact: |acc| < 2^53 by contract and |quot| <= |acc|/q + 1.
    r = acc.astype(np.int64) - quot.astype(np.int64) * q
    r += q * (r < 0)
    r -= q * (r >= q)
    return r


def barrett_reduce_nonneg(
    acc: np.ndarray, q: int, partial: bool = False
) -> np.ndarray:
    """Barrett for *non-negative* accumulators: fewer full-tensor passes.

    The reciprocal is biased two ulps low, so the truncated quotient
    ``k = trunc(acc * recip)`` never exceeds ``floor(acc / q)`` — the
    remainder ``acc - k*q`` lands in ``[0, 2q)`` with no negative branch
    and no ``np.floor`` pass.  With ``partial=True`` that ``[0, 2q)``
    value is returned as-is for consumers that re-reduce anyway (the
    key-switch inner product sizes its chunks on the actual operand
    range); otherwise one conditional subtract canonicalises to
    ``[0, q)``.

    Exactness needs the downward bias to cost at most one quotient:
    the quotient error is ``<= (acc/q) * 2^-51 < 1`` for ``acc < 2^53``
    once ``q >= 2^14``, hence the tighter modulus floor than
    :func:`barrett_reduce` (which handles any ``q >= 2``).
    """
    if q < (1 << 14):
        raise ParameterError(
            f"modulus {q} below 2^14: the biased-reciprocal quotient bound "
            f"needs q >= 2^14 (use barrett_reduce)"
        )
    if q >= FLOAT64_EXACT_MAX:
        raise ParameterError(
            f"modulus {q} exceeds the float64-exact Barrett range"
        )
    recip = np.nextafter(np.nextafter(1.0 / q, 0.0), 0.0)
    quot = (acc * recip).astype(np.int64)
    r = acc.astype(np.int64) - quot * q
    if not partial:
        r -= q * (r >= q)
    return r


class MontgomeryContext:
    """Montgomery form mod ``q`` with ``R = 2^32``, vectorised over int64.

    REDC computes ``t * R^{-1} mod q`` with two multiplies and a shift —
    no division, no hardware modulo — using the identity
    ``(t + ((t * (-q^{-1}) mod R)) * q) / R  ≡  t * R^{-1} (mod q)``.
    The low-half product ``t * q_inv_neg mod R`` is the natural wrapping
    behaviour of uint64 arithmetic masked to 32 bits, which is why the
    kernels below run on ``view``-free numpy tensors without big-ints.
    """

    R_LOG2 = 32

    def __init__(self, q: int):
        if q < 3 or q % 2 == 0:
            raise ParameterError(
                f"Montgomery reduction needs an odd modulus >= 3, got {q}"
            )
        if q >= (1 << 31):
            # t + m*q must fit uint64: q*2^32 + q*2^32 < 2^64 needs q < 2^31.
            raise ParameterError(
                f"modulus {q} too large for the R=2^32 Montgomery form"
            )
        self.q = q
        self.r = 1 << self.R_LOG2
        self.mask = self.r - 1
        self.r_mod_q = self.r % q
        self.r2_mod_q = (self.r_mod_q * self.r_mod_q) % q
        # -q^{-1} mod R, the REDC constant.
        self.q_inv_neg = (-pow(q, -1, self.r)) % self.r

    def to_mont(self, x: np.ndarray) -> np.ndarray:
        """Map canonical residues into Montgomery form: ``x * R mod q``."""
        arr = np.asarray(x, dtype=np.int64) % self.q
        return (arr * self.r_mod_q) % self.q  # < 2^28 * 2^31: fits int64

    def reduce(self, t: np.ndarray) -> np.ndarray:
        """REDC: ``t -> t * R^{-1} mod q`` for ``0 <= t < q * R``."""
        tu = np.asarray(t).astype(np.uint64)
        m = (tu & np.uint64(self.mask)) * np.uint64(self.q_inv_neg) \
            & np.uint64(self.mask)
        u = (tu + m * np.uint64(self.q)) >> np.uint64(self.R_LOG2)
        out = u.astype(np.int64)
        out -= self.q * (out >= self.q)
        return out

    def mul(self, a_mont: np.ndarray, b_mont: np.ndarray) -> np.ndarray:
        """Product of two Montgomery-form tensors, result in Montgomery form."""
        a = np.asarray(a_mont, dtype=np.int64)
        b = np.asarray(b_mont, dtype=np.int64)
        return self.reduce(a * b)  # residues < q < 2^31: product fits int64

    def from_mont(self, x_mont: np.ndarray) -> np.ndarray:
        """Map Montgomery-form residues back to canonical form."""
        return self.reduce(np.asarray(x_mont, dtype=np.int64))

    def modmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Canonical ``a * b mod q`` through one round trip (for the tests)."""
        return self.from_mont(self.mul(self.to_mont(a), self.to_mont(b)))
