"""Client-side cluster registry: routing, query building, ground truth.

The third registry beside :class:`~repro.serve.registry.RealShardRegistry`
(thread pool, servers in-process) and ``SimShardRegistry`` (virtual
time): here the shard replicas live in *worker processes*, so this side
holds only what the client of a deployment would hold — the secret key,
per-shard record layouts for query construction and decode, and the
epoch-versioned ground-truth records the coordinator ships to workers on
load and rebalance.

Epochs: ``make_request`` stamps each request with the current epoch;
``commit_publish`` advances it only after every live worker has acked the
broadcast, so a new epoch is never admissible before every replica can
answer it (the cross-process analog of ``repro.mutate.serving``'s atomic
publish).  Record layouts are geometry-only and epoch-invariant for
put/delete logs, which is why decode needs no epoch bookkeeping here.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MutateError, RoutingError
from repro.mutate.log import Delete, Mutation, Put, UpdateLog
from repro.params import PirParams
from repro.pir.client import PirClient, PirResponse
from repro.pir.layout import RecordLayout
from repro.serve.registry import ServeRequest, ShardMap


class ClusterRegistry:
    """Routing + crypto client for a multi-process shard deployment."""

    def __init__(
        self,
        params: PirParams,
        records: list[bytes],
        num_shards: int,
        record_bytes: int | None = None,
        seed: int | None = None,
    ):
        self.params = params
        self.map = ShardMap(len(records), num_shards)
        self.seed = seed
        self.client = PirClient(params, seed=seed)
        self.setup = self.client.setup_message()
        self.record_bytes = (
            record_bytes if record_bytes is not None else len(records[0])
        )
        for i, rec in enumerate(records):
            if len(rec) != self.record_bytes:
                raise MutateError(
                    f"record {i} has {len(rec)} bytes, expected {self.record_bytes}"
                )
        self._shard_records: list[list[bytes]] = []
        self.layouts: list[RecordLayout] = []
        for shard_id in range(num_shards):
            start = self.map.starts[shard_id]
            size = self.map.sizes[shard_id]
            self._shard_records.append(list(records[start : start + size]))
            self.layouts.append(
                RecordLayout(
                    params=params, record_bytes=self.record_bytes, num_records=size
                )
            )
        self.current_epoch = 0

    @classmethod
    def random(
        cls,
        params: PirParams,
        num_records: int,
        record_bytes: int,
        num_shards: int,
        seed: int | None = None,
    ) -> "ClusterRegistry":
        rng = np.random.default_rng(seed)
        records = [rng.bytes(record_bytes) for _ in range(num_records)]
        return cls(params, records, num_shards, record_bytes, seed=seed)

    # -- geometry ----------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.map.num_shards

    @property
    def num_records(self) -> int:
        return self.map.num_records

    def shard_records(self, shard_id: int) -> tuple[bytes, ...]:
        """Current-epoch ground truth of one shard (what a replica loads)."""
        return tuple(self._shard_records[self.map.check_shard(shard_id)])

    # -- serving interface (ServeRuntime registry contract) ----------------
    def make_request(self, global_index: int) -> ServeRequest:
        """Route, build the real query, stamp the current epoch."""
        shard_id, local = self.map.route(global_index)
        query = self.client.build_query(local, self.layouts[shard_id])
        return ServeRequest(
            global_index=int(global_index),
            shard_id=shard_id,
            local_index=local,
            query=query,
            epoch=self.current_epoch,
        )

    def decode(self, request: ServeRequest, response: PirResponse) -> bytes:
        layout = self.layouts[self.map.check_shard(request.shard_id)]
        return self.client.decode_response(response, request.local_index, layout)

    def expected(self, global_index: int) -> bytes:
        """Ground truth at the *current* epoch (tests/benchmarks)."""
        global_index = ShardMap._as_index(global_index, "record index")
        if not 0 <= global_index < self.num_records:
            raise RoutingError(
                f"record {global_index} out of range [0, {self.num_records})"
            )
        shard_id, local = self.map.route(global_index)
        return self._shard_records[shard_id][local]

    # -- epoch publish (driven by the coordinator) -------------------------
    def split_log(self, log: UpdateLog) -> list[tuple[Mutation, ...]]:
        """Validate and split a global-index log into per-shard local ops.

        Everything that can fail — routing, record sizes, appends — fails
        *here*, before any worker sees the log, so a broadcast can only
        carry applies that every replica will accept (the cross-process
        atomicity argument).
        """
        if log.num_appends:
            raise MutateError(
                "online appends would re-route the shard partition; "
                "rebuild the cluster to grow the record space"
            )
        shard_ops: list[list[Mutation]] = [[] for _ in range(self.num_shards)]
        for op in log:
            shard_id, local = self.map.route(op.index)
            if isinstance(op, Put):
                if len(op.record) != self.record_bytes:
                    raise MutateError(
                        f"update for record {op.index} has {len(op.record)} "
                        f"bytes, registry expects {self.record_bytes}"
                    )
                shard_ops[shard_id].append(Put(local, op.record))
            else:
                shard_ops[shard_id].append(Delete(local))
        return [tuple(ops) for ops in shard_ops]

    def commit_publish(
        self, epoch: int, shard_ops: list[tuple[Mutation, ...]]
    ) -> None:
        """Advance ground truth + admissions after every worker acked."""
        if epoch != self.current_epoch + 1:
            raise MutateError(
                f"publish of epoch {epoch} against current {self.current_epoch}"
            )
        tombstone = b"\0" * self.record_bytes
        for shard_id, ops in enumerate(shard_ops):
            records = self._shard_records[shard_id]
            for op in ops:
                records[op.index] = op.record if isinstance(op, Put) else tombstone
        self.current_epoch = epoch
