"""Worker process: owns shard replicas, answers batches, applies epochs.

One worker is one OS process with its own interpreter and GIL — the whole
point of the cluster runtime.  It is structurally simple: a single
message loop over the duplex pipe (FIFO with the coordinator) plus one
daemon thread that emits :class:`~repro.cluster.messages.Heartbeat`
beacons so the coordinator can tell a stalled process from one grinding
through a long batch.  All serving state is process-local:

* per owned shard, a :class:`~repro.mutate.versioned.VersionedDatabase`
  (ground truth + preprocessed NTT planes with copy-on-write epochs) and
  one :class:`~repro.pir.server.PirServer` per live epoch;
* the client's :class:`~repro.pir.client.ClientSetup` evaluation keys,
  shipped once at spawn.

Requests carry the epoch they were admitted under; the worker answers
with that epoch's server and keeps a bounded retention window of older
epochs, so a publish that lands while a window is queued never changes
what an admitted request decodes to.  An epoch outside the window is a
typed :class:`~repro.errors.StaleEpoch` carried back over the pipe.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ClusterError, ReproError, StaleEpoch
from repro.he.backend import get_backend
from repro.he.poly import RingContext
from repro.mutate.log import UpdateLog
from repro.mutate.versioned import EpochSnapshot, VersionedDatabase
from repro.obs.profile import KernelProfiler
from repro.obs.profile import install as install_profiler
from repro.obs.trace import Span
from repro.pir.client import ClientSetup
from repro.pir.server import PirServer

from repro.cluster.messages import (
    AnswerBatch,
    BatchDone,
    BatchFailed,
    DropReplica,
    EpochPublished,
    Heartbeat,
    LoadReplica,
    PublishEpoch,
    ReplicaLoaded,
    Shutdown,
    WorkerConfig,
    WorkerHello,
    WorkerStopped,
)


@dataclass
class _Replica:
    """One shard's serving state: versioned DB + per-epoch servers."""

    shard_id: int
    vdb: VersionedDatabase
    servers: dict[int, PirServer] = field(default_factory=dict)
    snapshots: dict[int, EpochSnapshot] = field(default_factory=dict)

    def live_epochs(self) -> tuple[int, ...]:
        return tuple(sorted(self.servers))

    def server_for(self, epoch: int) -> PirServer:
        server = self.servers.get(epoch)
        if server is None:
            live = self.live_epochs()
            raise StaleEpoch(epoch=epoch, current=live[-1], oldest_live=live[0])
        return server

    def answer(self, epoch: int, queries) -> tuple:
        server = self.server_for(epoch)
        return tuple(server.answer(q) for q in queries)


class ClusterWorker:
    """The run loop behind :func:`worker_main` (kept a class for tests)."""

    def __init__(self, conn, config: WorkerConfig, setup: ClientSetup):
        self.conn = conn
        self.config = config
        self.setup = setup
        self.ring = RingContext.shared(config.params)
        # Reconstructed from the registry name that travelled in the
        # pickled WorkerConfig; resolution errors surface at spawn.
        self.backend = get_backend(config.backend)
        self.replicas: dict[int, _Replica] = {}
        self._send_lock = threading.Lock()
        self._stop = threading.Event()
        self._hb_seq = 0

    # -- plumbing ----------------------------------------------------------
    def _send(self, msg) -> None:
        """Thread-safe send; a vanished coordinator just ends the worker."""
        with self._send_lock:
            try:
                self.conn.send(msg)
            except (BrokenPipeError, OSError):
                self._stop.set()

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.config.heartbeat_interval_s):
            epochs = sorted(
                {e for rep in self.replicas.values() for e in rep.servers}
            )
            self._hb_seq += 1
            self._send(
                Heartbeat(
                    worker_id=self.config.worker_id,
                    seq=self._hb_seq,
                    epochs=tuple(epochs),
                )
            )

    # -- message handlers --------------------------------------------------
    def _load_replica(self, msg: LoadReplica) -> None:
        start = time.monotonic()
        vdb = VersionedDatabase(
            self.config.params,
            list(msg.records),
            self.config.record_bytes,
            ring=self.ring,
            backend=self.backend,
        )
        replica = _Replica(shard_id=msg.shard_id, vdb=vdb)
        replica.snapshots[msg.epoch] = vdb.current
        replica.servers[msg.epoch] = PirServer(
            vdb.current.pre, self.setup, backend=self.backend
        )
        self.replicas[msg.shard_id] = replica
        self._send(
            ReplicaLoaded(
                worker_id=self.config.worker_id,
                shard_id=msg.shard_id,
                epoch=msg.epoch,
                preprocess_s=time.monotonic() - start,
            )
        )

    def _answer_batch(self, msg: AnswerBatch) -> None:
        spans: tuple = ()
        try:
            replica = self.replicas.get(msg.shard_id)
            if replica is None:
                raise ClusterError(
                    f"worker {self.config.worker_id} owns no replica of "
                    f"shard {msg.shard_id}"
                )
            if self.config.trace:
                responses, spans = self._answer_traced(replica, msg)
            else:
                responses = replica.answer(msg.epoch, msg.queries)
        except ReproError as exc:
            details: tuple = ()
            if isinstance(exc, StaleEpoch):
                details = (exc.epoch, exc.current, exc.oldest_live)
            self._send(
                BatchFailed(
                    worker_id=self.config.worker_id,
                    batch_id=msg.batch_id,
                    shard_id=msg.shard_id,
                    error_kind=type(exc).__name__,
                    message=str(exc),
                    details=details,
                )
            )
            return
        self._send(
            BatchDone(
                worker_id=self.config.worker_id,
                batch_id=msg.batch_id,
                shard_id=msg.shard_id,
                responses=responses,
                spans=spans,
            )
        )

    def _answer_traced(self, replica: _Replica, msg: AnswerBatch) -> tuple:
        """Answer query-by-query, timing each for the shipped-back spans.

        ``time.monotonic()`` here and ``loop.time()`` coordinator-side are
        the same Linux CLOCK_MONOTONIC, so these spans land on the shared
        cross-process timeline without any clock translation.
        """
        server = replica.server_for(msg.epoch)
        pid = os.getpid()
        tid = f"worker-{self.config.worker_id}"
        trace_ids = msg.trace_ids or (None,) * len(msg.queries)
        responses = []
        spans = []
        batch_start = time.monotonic()
        for query, trace_id in zip(msg.queries, trace_ids):
            start = time.monotonic()
            responses.append(server.answer(query))
            spans.append(
                Span(
                    trace_id=trace_id,
                    name="worker.answer",
                    start_s=start,
                    dur_s=time.monotonic() - start,
                    pid=pid,
                    tid=tid,
                    cat="cluster",
                    args={"shard": msg.shard_id, "epoch": msg.epoch},
                )
            )
        spans.append(
            Span(
                trace_id=next((t for t in trace_ids if t is not None), None),
                name="worker.batch",
                start_s=batch_start,
                dur_s=time.monotonic() - batch_start,
                pid=pid,
                tid=tid,
                cat="cluster",
                args={
                    "shard": msg.shard_id,
                    "epoch": msg.epoch,
                    "batch": len(msg.queries),
                },
            )
        )
        return tuple(responses), tuple(spans)

    def _publish_epoch(self, msg: PublishEpoch) -> None:
        """Advance every owned replica to ``msg.epoch`` (empty log if clean).

        Logs were validated coordinator-side before the broadcast, so an
        apply failure here is a worker-local fault: it is reported in the
        ack and the coordinator treats the worker as lost rather than
        leaving the cluster half-published.
        """
        repacked = 0
        try:
            for shard_id, replica in sorted(self.replicas.items()):
                ops = msg.shard_ops.get(shard_id, ())
                snapshot = replica.vdb.apply(UpdateLog(list(ops)))
                repacked += snapshot.cost.polys_repacked
                replica.snapshots[msg.epoch] = snapshot
                replica.servers[msg.epoch] = PirServer(
                    snapshot.pre, self.setup, backend=self.backend
                )
                oldest_kept = msg.epoch - self.config.retain + 1
                for epoch in [e for e in replica.servers if e < oldest_kept]:
                    del replica.servers[epoch]
                    del replica.snapshots[epoch]
        except ReproError as exc:
            self._send(
                EpochPublished(
                    worker_id=self.config.worker_id,
                    epoch=msg.epoch,
                    shard_ids=tuple(sorted(self.replicas)),
                    polys_repacked=repacked,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
            return
        self._send(
            EpochPublished(
                worker_id=self.config.worker_id,
                epoch=msg.epoch,
                shard_ids=tuple(sorted(self.replicas)),
                polys_repacked=repacked,
            )
        )

    # -- run loop ----------------------------------------------------------
    def run(self) -> None:
        profiler = None
        if self.config.profile:
            # Process-local kernel profiler: every repro.he / repro.pir
            # kernel in this process accumulates into it; totals ride home
            # in WorkerStopped at shutdown.
            profiler = KernelProfiler()
            install_profiler(profiler)
        self._send(WorkerHello(worker_id=self.config.worker_id, pid=os.getpid()))
        beater = threading.Thread(
            target=self._heartbeat_loop,
            name=f"cluster-worker-{self.config.worker_id}-hb",
            daemon=True,
        )
        beater.start()
        try:
            while not self._stop.is_set():
                try:
                    msg = self.conn.recv()
                except (EOFError, OSError):
                    break  # coordinator is gone; nothing left to serve
                if isinstance(msg, AnswerBatch):
                    self._answer_batch(msg)
                elif isinstance(msg, LoadReplica):
                    self._load_replica(msg)
                elif isinstance(msg, PublishEpoch):
                    self._publish_epoch(msg)
                elif isinstance(msg, DropReplica):
                    self.replicas.pop(msg.shard_id, None)
                elif isinstance(msg, Shutdown):
                    stats = profiler.stats_tuple() if profiler is not None else ()
                    self._send(
                        WorkerStopped(
                            worker_id=self.config.worker_id, kernel_stats=stats
                        )
                    )
                    break
                else:
                    raise ClusterError(
                        f"worker {self.config.worker_id} received unknown "
                        f"message {type(msg).__name__}"
                    )
        finally:
            self._stop.set()
            beater.join(timeout=2 * self.config.heartbeat_interval_s)
            try:
                self.conn.close()
            except OSError:
                pass


def worker_main(conn, config: WorkerConfig, setup: ClientSetup) -> None:
    """Spawn target: must stay importable at module top level (spawn-safe)."""
    ClusterWorker(conn, config, setup).run()
