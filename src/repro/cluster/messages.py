"""Typed message protocol between the cluster coordinator and its workers.

Every message is a frozen dataclass of plain data (ints, bytes, tuples,
and the crypto value types, which pickle compactly because
:class:`~repro.he.poly.RingContext` reduces to a process-interned
lookup).  The protocol is deliberately small:

coordinator -> worker
    :class:`LoadReplica`   own a shard replica (records at an epoch)
    :class:`DropReplica`   stop serving a shard
    :class:`AnswerBatch`   answer one dispatch window's queries
    :class:`PublishEpoch`  apply per-shard update logs, advance the epoch
    :class:`Shutdown`      drain and exit

worker -> coordinator
    :class:`WorkerHello`     process is up, imports done
    :class:`Heartbeat`       liveness beacon (independent thread)
    :class:`ReplicaLoaded`   shard replica preprocessed and serving
    :class:`BatchDone` / :class:`BatchFailed`
    :class:`EpochPublished`  per-worker publish ack with delta accounting
    :class:`WorkerStopped`   clean exit after ``Shutdown``

Both directions share one duplex pipe per worker, so per-worker FIFO
ordering is guaranteed: a request stamped with epoch E that was sent
before ``PublishEpoch(E+1)`` reaches the worker first, and anything sent
after the publish ack can only arrive after the worker advanced — which
is what makes the cross-process epoch hot-swap race-free without any
worker-side locking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mutate.log import Mutation
from repro.params import PirParams
from repro.pir.client import PirQuery, PirResponse


@dataclass(frozen=True)
class WorkerConfig:
    """Spawn-time configuration, pickled into the worker process."""

    worker_id: int
    params: PirParams
    record_bytes: int
    heartbeat_interval_s: float
    #: Epochs a replica keeps answerable behind the newest (mutate-style
    #: retention window for in-flight requests pinned to their admission).
    retain: int
    #: Worker-local seed derived from the cluster seed (``seed + worker_id``)
    #: so a seeded loadtest is reproducible end to end across processes.
    seed: int | None
    #: Compute-backend name (``repro.he.backend`` registry) reconstructed
    #: inside the spawned process — backends themselves never cross the
    #: pipe, only the registry key.
    backend: str = "planned"
    #: Observability opt-ins (``repro.obs``): with ``trace`` the worker
    #: times each answered query and ships :class:`~repro.obs.trace.Span`
    #: values back in :class:`BatchDone`; with ``profile`` it installs a
    #: process-local kernel profiler and ships the per-stage totals in
    #: :class:`WorkerStopped`.
    trace: bool = False
    profile: bool = False


# -- coordinator -> worker -------------------------------------------------


@dataclass(frozen=True)
class LoadReplica:
    """Own a replica of ``shard_id``: build + preprocess the database."""

    shard_id: int
    epoch: int
    records: tuple[bytes, ...]


@dataclass(frozen=True)
class DropReplica:
    shard_id: int


@dataclass(frozen=True)
class AnswerBatch:
    """One dispatch window for one shard, pinned to its admitted epoch."""

    batch_id: int
    shard_id: int
    epoch: int
    queries: tuple[PirQuery, ...]
    #: Per-query trace ids (aligned with ``queries``) when the run is
    #: traced; empty otherwise.  This is what carries a trace across the
    #: process boundary: the worker stamps its answer spans with these
    #: ids, so one timeline shows both sides of the pipe.
    trace_ids: tuple[int | None, ...] = ()


@dataclass(frozen=True)
class PublishEpoch:
    """Advance every replica this worker owns to ``epoch``.

    ``shard_ops`` maps shard id -> shard-local mutations; owned shards
    missing from the map advance with an empty log (the epoch must exist
    on every replica or later requests would be spuriously stale).
    """

    epoch: int
    shard_ops: dict[int, tuple[Mutation, ...]] = field(default_factory=dict)


@dataclass(frozen=True)
class Shutdown:
    pass


# -- worker -> coordinator -------------------------------------------------


@dataclass(frozen=True)
class WorkerHello:
    worker_id: int
    pid: int


@dataclass(frozen=True)
class Heartbeat:
    worker_id: int
    seq: int
    #: Epochs currently answerable, aggregated across owned replicas.
    epochs: tuple[int, ...]


@dataclass(frozen=True)
class ReplicaLoaded:
    worker_id: int
    shard_id: int
    epoch: int
    preprocess_s: float


@dataclass(frozen=True)
class BatchDone:
    worker_id: int
    batch_id: int
    shard_id: int
    responses: tuple[PirResponse, ...]
    #: Worker-side :class:`~repro.obs.trace.Span` values (per-query
    #: ``worker.answer`` plus one ``worker.batch``) when tracing is on.
    spans: tuple = ()


@dataclass(frozen=True)
class BatchFailed:
    """A batch failed inside the worker with a typed, reconstructable error.

    ``error_kind`` names a class in :mod:`repro.errors`; ``details``
    carries its constructor fields when reconstruction needs them (e.g.
    ``StaleEpoch``), so the coordinator can re-raise the *same* typed
    rejection the in-process backends would have raised.
    """

    worker_id: int
    batch_id: int
    shard_id: int
    error_kind: str
    message: str
    details: tuple = ()


@dataclass(frozen=True)
class EpochPublished:
    worker_id: int
    epoch: int
    shard_ids: tuple[int, ...]
    polys_repacked: int
    error: str | None = None


@dataclass(frozen=True)
class WorkerStopped:
    worker_id: int
    #: Per-stage kernel totals (``KernelProfiler.stats_tuple``) when the
    #: worker was spawned with ``profile=True``; merged coordinator-side.
    kernel_stats: tuple = ()
