"""repro.cluster — multi-process coordinator/worker runtime (escape the GIL).

The third serving backend beside the thread-pool
:class:`~repro.serve.workers.RealCryptoBackend` and the virtual-time
:class:`~repro.serve.workers.SimulatedBackend`: real-crypto shard
replicas live in worker *processes*, each with its own interpreter, so
aggregate QPS scales with cores instead of saturating on one GIL.  The
coordinator routes dispatcher batches, tracks worker health via
heartbeats, retries or re-routes around worker death, rebalances lost
replicas, broadcasts atomic cross-shard epoch publishes
(``repro.mutate`` hot-swap across process boundaries), and drains
gracefully.  ``repro.systems.cluster`` remains the analytic twin; its
scaling predictions are compared against measured cluster QPS in
``benchmarks/bench_cluster.py``.
"""

from repro.cluster.coordinator import (
    ClusterBackend,
    ClusterCoordinator,
    ClusterPublishResult,
    ClusterStats,
)
from repro.cluster.messages import (
    AnswerBatch,
    BatchDone,
    BatchFailed,
    DropReplica,
    EpochPublished,
    Heartbeat,
    LoadReplica,
    PublishEpoch,
    ReplicaLoaded,
    Shutdown,
    WorkerConfig,
    WorkerHello,
    WorkerStopped,
)
from repro.cluster.registry import ClusterRegistry
from repro.cluster.worker import ClusterWorker, worker_main

__all__ = [
    "AnswerBatch",
    "BatchDone",
    "BatchFailed",
    "ClusterBackend",
    "ClusterCoordinator",
    "ClusterPublishResult",
    "ClusterRegistry",
    "ClusterStats",
    "ClusterWorker",
    "DropReplica",
    "EpochPublished",
    "Heartbeat",
    "LoadReplica",
    "PublishEpoch",
    "ReplicaLoaded",
    "Shutdown",
    "WorkerConfig",
    "WorkerHello",
    "WorkerStopped",
    "worker_main",
]
