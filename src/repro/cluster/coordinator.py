"""Cluster coordinator: spawn, route, health-check, retry, rebalance.

The coordinator is the master of the master/worker runtime.  It spawns N
worker processes (``multiprocessing`` spawn context — no inherited
state), assigns each shard ``replication`` replicas round-robin, and
then mediates all traffic over one duplex pipe per worker:

* **Answering.**  :meth:`answer` takes one dispatcher batch, groups it by
  admitted epoch (a window that straddles a publish legitimately mixes
  epochs), picks the least-loaded live replica per group, and awaits the
  typed ack.  Batches in flight on a worker that dies are retried on a
  surviving replica — or on a freshly rebalanced one — until the attempt
  budget runs out, at which point the caller gets the typed
  :class:`~repro.errors.WorkerDied`; a response is therefore either
  byte-correct or a typed rejection, never silently wrong.
* **Health.**  Every worker heartbeats from an independent thread; a
  monitor task declares a worker dead when its process exits *or* its
  beacons stop for ``heartbeat_timeout_s`` (a SIGSTOP'd or livelocked
  process fails the same way as a crashed one).
* **Rebalancing.**  When a shard loses its last replica, the coordinator
  re-ships that shard's current-epoch records to the least-loaded
  survivor and resumes routing once the replica acks.
* **Epoch publish.**  :meth:`publish` validates the log client-side,
  broadcasts per-shard ops to every live worker, and commits the new
  epoch for admissions only after all acks — in-flight requests keep
  their admitted epoch (answered from each worker's retention window).
* **Drain.**  :meth:`aclose` stops routing, sends ``Shutdown``, joins the
  processes off-loop, and force-kills stragglers.

Reader threads never touch coordinator state directly: every inbound
message is marshalled onto the event loop with ``call_soon_threadsafe``,
so all bookkeeping is single-threaded on the loop.  Outbound messages
ride a per-worker writer thread for the mirror-image reason: a pipe
``send`` to a stalled (SIGSTOP'd, livelocked) worker blocks once the OS
buffer fills, and doing that on the loop would freeze the very monitor
that is supposed to declare the worker dead.  The writer thread absorbs
the block; the heartbeat monitor kills the process, which unblocks the
write with ``EPIPE`` and lets the thread exit.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import queue
import threading
from dataclasses import dataclass, field

from repro import errors as _errors
from repro.errors import (
    ClusterError,
    NoReplicaError,
    ParameterError,
    StaleEpoch,
    WorkerDied,
)
from repro.he.backend import get_backend
from repro.mutate.log import UpdateLog
from repro.obs.events import FlightRecorder
from repro.obs.profile import KernelProfiler
from repro.obs.trace import Tracer
from repro.serve.registry import ServeRequest

from repro.cluster.messages import (
    AnswerBatch,
    BatchDone,
    BatchFailed,
    EpochPublished,
    Heartbeat,
    LoadReplica,
    PublishEpoch,
    ReplicaLoaded,
    Shutdown,
    WorkerConfig,
    WorkerHello,
    WorkerStopped,
)
from repro.cluster.registry import ClusterRegistry
from repro.cluster.worker import worker_main


@dataclass
class _Inflight:
    """One answer batch awaiting its ack from a specific worker."""

    batch_id: int
    shard_id: int
    epoch: int
    queries: tuple
    future: asyncio.Future
    #: Trace ids of the batch's requests — the cross-link the flight
    #: recorder stamps into a worker-death event so a post-mortem can name
    #: exactly which in-flight traces the death victimized.
    trace_ids: tuple = ()


#: Sentinel telling a worker's writer thread to exit its send loop.
_WRITER_STOP = object()


@dataclass
class _Worker:
    worker_id: int
    process: multiprocessing.Process
    conn: object
    shards: set[int] = field(default_factory=set)
    alive: bool = True
    last_seen: float = 0.0
    inflight: dict[int, _Inflight] = field(default_factory=dict)
    loading: dict[int, asyncio.Future] = field(default_factory=dict)
    publish_acks: dict[int, asyncio.Future] = field(default_factory=dict)
    reader: threading.Thread | None = None
    writer: threading.Thread | None = None
    outbox: queue.SimpleQueue = field(default_factory=queue.SimpleQueue)


@dataclass(frozen=True)
class ClusterPublishResult:
    """Outcome of one cross-process epoch publish."""

    epoch: int
    polys_repacked: int
    acked_workers: tuple[int, ...]
    lost_workers: tuple[int, ...]


@dataclass
class ClusterStats:
    """Coordinator-side counters (the cluster analog of ServeMetrics)."""

    batches_sent: int = 0
    batches_retried: int = 0
    worker_deaths: int = 0
    #: Deaths declared specifically because beacons stopped (a subset of
    #: ``worker_deaths``) — distinguishes a hung process from a crashed one.
    heartbeat_timeouts: int = 0
    rebalanced_shards: int = 0
    epochs_published: int = 0


class ClusterCoordinator:
    """Owns the worker fleet for one :class:`ClusterRegistry`."""

    def __init__(
        self,
        registry: ClusterRegistry,
        num_workers: int,
        replication: int = 1,
        heartbeat_interval_s: float = 0.25,
        heartbeat_timeout_s: float = 10.0,
        max_attempts: int = 3,
        retain: int = 2,
        backend: str = "planned",
        tracer: Tracer | None = None,
        profiler: KernelProfiler | None = None,
        recorder: FlightRecorder | None = None,
    ):
        if num_workers < 1:
            raise ParameterError("need at least one worker process")
        if not 1 <= replication <= num_workers:
            raise ParameterError(
                f"replication {replication} must be in [1, {num_workers}]"
            )
        if max_attempts < 1:
            raise ParameterError("need at least one answer attempt")
        if heartbeat_timeout_s <= heartbeat_interval_s:
            raise ParameterError("heartbeat timeout must exceed the interval")
        self.registry = registry
        self.num_workers = num_workers
        self.replication = replication
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.max_attempts = max_attempts
        self.retain = retain
        # Validate the name eagerly — a typo should fail here, not in a
        # spawned worker; only the registry key travels in WorkerConfig.
        self.backend = get_backend(backend).name
        #: When set, workers are spawned with trace/profile on: they time
        #: answers (spans ride home in BatchDone, merged into the tracer)
        #: and accumulate kernel stats (merged at WorkerStopped).
        self.tracer = tracer
        self.profiler = profiler
        self.recorder = recorder
        if recorder is not None:
            recorder.attach_source("cluster", self.cluster_snapshot)
        self.stats = ClusterStats()
        self._workers: dict[int, _Worker] = {}
        #: shard id -> worker ids with a *ready* replica.
        self._owners: dict[int, set[int]] = {
            s: set() for s in range(registry.num_shards)
        }
        self._batch_ids = itertools.count()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._monitor_task: asyncio.Task | None = None
        self._topology_lock: asyncio.Lock | None = None
        self._draining = False
        self._started = False

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Spawn the fleet and wait until every shard has its replicas."""
        if self._started:
            raise ClusterError("coordinator already started")
        self._started = True
        self._loop = asyncio.get_running_loop()
        self._topology_lock = asyncio.Lock()
        ctx = multiprocessing.get_context("spawn")
        seed = self.registry.seed
        for worker_id in range(self.num_workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            config = WorkerConfig(
                worker_id=worker_id,
                params=self.registry.params,
                record_bytes=self.registry.record_bytes,
                heartbeat_interval_s=self.heartbeat_interval_s,
                retain=self.retain,
                seed=None if seed is None else seed + worker_id,
                backend=self.backend,
                trace=self.tracer is not None,
                profile=self.profiler is not None,
            )
            process = ctx.Process(
                target=worker_main,
                args=(child_conn, config, self.registry.setup),
                name=f"pir-cluster-worker-{worker_id}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            worker = _Worker(
                worker_id=worker_id,
                process=process,
                conn=parent_conn,
                last_seen=self._loop.time(),
            )
            worker.reader = threading.Thread(
                target=self._reader_loop,
                args=(worker,),
                name=f"cluster-reader-{worker_id}",
                daemon=True,
            )
            worker.reader.start()
            worker.writer = threading.Thread(
                target=self._writer_loop,
                args=(worker,),
                name=f"cluster-writer-{worker_id}",
                daemon=True,
            )
            worker.writer.start()
            self._workers[worker_id] = worker
        # Monitor first: a worker that dies while preprocessing its replicas
        # must fail start() with a typed error, not hang it.
        self._monitor_task = asyncio.create_task(
            self._monitor(), name="cluster-health-monitor"
        )
        loads = []
        for shard_id in range(self.registry.num_shards):
            for r in range(self.replication):
                worker = self._workers[(shard_id + r) % self.num_workers]
                loads.append(self._load_replica(worker, shard_id))
        await asyncio.gather(*loads)

    async def __aenter__(self) -> "ClusterCoordinator":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        """Graceful drain: stop routing, shut workers down, reap processes."""
        if self._draining:
            return
        self._draining = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
        for worker in self._workers.values():
            if worker.alive:
                self._send(worker, Shutdown())
        join_timeout = max(5.0, 4 * self.heartbeat_timeout_s)
        await asyncio.gather(
            *(
                asyncio.get_running_loop().run_in_executor(
                    None, w.process.join, join_timeout
                )
                for w in self._workers.values()
            )
        )
        for worker in self._workers.values():
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
            worker.alive = False
            try:
                worker.conn.close()
            except OSError:
                pass
            if worker.reader is not None:
                worker.reader.join(timeout=2.0)
            if worker.writer is not None:
                worker.outbox.put(_WRITER_STOP)
                worker.writer.join(timeout=2.0)
            # Whatever was still pending dies typed, not dangling.
            self._fail_worker_state(worker, reason="coordinator drained")

    @property
    def live_workers(self) -> tuple[int, ...]:
        return tuple(sorted(w.worker_id for w in self._workers.values() if w.alive))

    # -- reader thread -> loop marshalling ---------------------------------
    def _reader_loop(self, worker: _Worker) -> None:
        while True:
            try:
                msg = worker.conn.recv()
            except (EOFError, OSError):
                break
            self._loop.call_soon_threadsafe(self._on_message, worker, msg)
        self._loop.call_soon_threadsafe(
            self._on_worker_death, worker, "pipe closed (process exited)"
        )

    def _on_message(self, worker: _Worker, msg) -> None:
        worker.last_seen = self._loop.time()
        if isinstance(msg, BatchDone):
            if msg.spans and self.tracer is not None:
                self.tracer.extend(msg.spans)
            inflight = worker.inflight.pop(msg.batch_id, None)
            if inflight is not None and not inflight.future.done():
                inflight.future.set_result(list(msg.responses))
        elif isinstance(msg, BatchFailed):
            inflight = worker.inflight.pop(msg.batch_id, None)
            if inflight is not None and not inflight.future.done():
                inflight.future.set_exception(self._reconstruct(msg))
        elif isinstance(msg, Heartbeat):
            pass  # last_seen already refreshed above
        elif isinstance(msg, ReplicaLoaded):
            worker.shards.add(msg.shard_id)
            self._owners[msg.shard_id].add(worker.worker_id)
            future = worker.loading.pop(msg.shard_id, None)
            if future is not None and not future.done():
                future.set_result(msg)
        elif isinstance(msg, EpochPublished):
            future = worker.publish_acks.pop(msg.epoch, None)
            if future is not None and not future.done():
                if msg.error is None:
                    future.set_result(msg)
                else:
                    future.set_exception(
                        ClusterError(
                            f"worker {worker.worker_id} failed publish of epoch "
                            f"{msg.epoch}: {msg.error}"
                        )
                    )
        elif isinstance(msg, WorkerStopped):
            if msg.kernel_stats and self.profiler is not None:
                self.profiler.merge_tuples(msg.kernel_stats)
        elif isinstance(msg, WorkerHello):
            pass  # liveness bookkeeping only

    @staticmethod
    def _reconstruct(msg: BatchFailed) -> Exception:
        """Rebuild the worker's typed error on the coordinator side."""
        if msg.error_kind == "StaleEpoch" and len(msg.details) == 3:
            return StaleEpoch(*msg.details)
        kind = getattr(_errors, msg.error_kind, None)
        if isinstance(kind, type) and issubclass(kind, _errors.ReproError):
            try:
                return kind(msg.message)
            except TypeError:
                pass  # custom constructor; fall through to the generic kind
        return ClusterError(f"{msg.error_kind}: {msg.message}")

    # -- failure handling --------------------------------------------------
    def _on_worker_death(self, worker: _Worker, reason: str) -> None:
        if not worker.alive:
            return
        worker.alive = False
        if not self._draining:
            self.stats.worker_deaths += 1
            if self.recorder is not None:
                # Before the inflight map is failed+cleared: the event must
                # cross-link every trace the death victimized, and the dump
                # it triggers must still see the batches as in flight.
                victims = tuple(
                    t
                    for inflight in worker.inflight.values()
                    for t in inflight.trace_ids
                )
                self.recorder.record(
                    "worker.death",
                    self._loop.time(),
                    trace_ids=victims,
                    worker=worker.worker_id,
                    reason=reason,
                    shards=sorted(worker.shards),
                    inflight_batches=len(worker.inflight),
                )
        if worker.process.is_alive():
            worker.process.kill()  # hung/stopped, not exited: put it down
        for shard_id in worker.shards:
            self._owners[shard_id].discard(worker.worker_id)
        self._fail_worker_state(worker, reason)
        if self._draining:
            return
        for shard_id in sorted(worker.shards):
            if not self._owners[shard_id]:
                asyncio.ensure_future(self._rebalance_quietly(shard_id))

    async def _rebalance_quietly(self, shard_id: int) -> None:
        """Proactive rebalance after a death; demand-side retries also run
        :meth:`_ensure_replica`, so a failure here is not fatal on its own."""
        try:
            await self._ensure_replica(shard_id)
        except NoReplicaError:
            pass

    def _fail_worker_state(self, worker: _Worker, reason: str) -> None:
        died = WorkerDied(worker.worker_id, reason)
        for inflight in list(worker.inflight.values()):
            if not inflight.future.done():
                inflight.future.set_exception(died)
        worker.inflight.clear()
        for future in list(worker.loading.values()):
            if not future.done():
                future.set_exception(died)
        worker.loading.clear()
        for future in list(worker.publish_acks.values()):
            if not future.done():
                future.set_exception(died)
        worker.publish_acks.clear()

    async def _monitor(self) -> None:
        while True:
            await asyncio.sleep(self.heartbeat_interval_s)
            now = self._loop.time()
            for worker in list(self._workers.values()):
                if not worker.alive:
                    continue
                if not worker.process.is_alive():
                    self._on_worker_death(worker, "process exited")
                elif now - worker.last_seen > self.heartbeat_timeout_s:
                    self.stats.heartbeat_timeouts += 1
                    if self.recorder is not None:
                        self.recorder.record(
                            "heartbeat.timeout",
                            now,
                            worker=worker.worker_id,
                            last_seen_age_s=now - worker.last_seen,
                            timeout_s=self.heartbeat_timeout_s,
                        )
                    self._on_worker_death(
                        worker,
                        f"no heartbeat for {now - worker.last_seen:.1f}s "
                        f"(timeout {self.heartbeat_timeout_s:.1f}s)",
                    )

    # -- replica placement -------------------------------------------------
    def _send(self, worker: _Worker, msg) -> None:
        """Queue ``msg`` for the worker's writer thread; never blocks.

        A failed send surfaces asynchronously: the writer thread marshals
        a death onto the loop, which fails every pending future for that
        worker with a typed :class:`WorkerDied` — so callers just await
        their ack instead of branching on a send result.
        """
        worker.outbox.put(msg)

    def _writer_loop(self, worker: _Worker) -> None:
        while True:
            msg = worker.outbox.get()
            if msg is _WRITER_STOP:
                break
            try:
                worker.conn.send(msg)
            except (BrokenPipeError, OSError):
                try:
                    self._loop.call_soon_threadsafe(
                        self._on_worker_death, worker, "pipe broke on send"
                    )
                except RuntimeError:
                    pass  # loop already closed during teardown
                break

    def _load_replica(self, worker: _Worker, shard_id: int) -> asyncio.Future:
        future = self._loop.create_future()
        worker.loading[shard_id] = future
        self._send(
            worker,
            LoadReplica(
                shard_id=shard_id,
                epoch=self.registry.current_epoch,
                records=self.registry.shard_records(shard_id),
            ),
        )
        return future

    async def _ensure_replica(self, shard_id: int) -> int:
        """Rebalance: guarantee at least one live replica of ``shard_id``.

        Serialized against publishes by the topology lock so a rebalance
        load cannot interleave an epoch broadcast and come up one epoch
        behind the admissible one.
        """
        async with self._topology_lock:
            owners = [w for w in self._owners[shard_id] if self._workers[w].alive]
            if owners:
                return owners[0]
            candidates = [w for w in self._workers.values() if w.alive]
            if not candidates:
                raise NoReplicaError(
                    f"shard {shard_id} lost all replicas and no worker is left"
                )
            target = min(candidates, key=lambda w: (len(w.shards), w.worker_id))
            try:
                await self._load_replica(target, shard_id)
            except WorkerDied:
                raise NoReplicaError(
                    f"shard {shard_id}: rebalance target worker "
                    f"{target.worker_id} died while loading"
                ) from None
            self.stats.rebalanced_shards += 1
            if self.recorder is not None:
                self.recorder.record(
                    "shard.rebalance",
                    self._loop.time(),
                    shard=shard_id,
                    target_worker=target.worker_id,
                    epoch=self.registry.current_epoch,
                )
            return target.worker_id

    def _pick_worker(self, shard_id: int, exclude: set[int]) -> _Worker | None:
        owners = [
            self._workers[w]
            for w in self._owners[shard_id]
            if w not in exclude and self._workers[w].alive
        ]
        if not owners:
            return None
        return min(owners, key=lambda w: (len(w.inflight), w.worker_id))

    # -- the serving backend interface ------------------------------------
    async def answer(self, shard_id: int, requests: list[ServeRequest]) -> list:
        """Answer one dispatcher batch; the third backend's entry point."""
        shard_id = self.registry.map.check_shard(shard_id)
        if self._draining:
            raise ClusterError("cluster coordinator is draining")
        groups: dict[int, list[int]] = {}
        for i, request in enumerate(requests):
            epoch = 0 if request.epoch is None else request.epoch
            groups.setdefault(epoch, []).append(i)
        results: list = [None] * len(requests)

        async def serve_group(epoch: int, positions: list[int]) -> None:
            queries = tuple(requests[i].query for i in positions)
            trace_ids = tuple(requests[i].trace_id for i in positions)
            if all(t is None for t in trace_ids):
                trace_ids = ()
            responses = await self._answer_group(
                shard_id, epoch, queries, trace_ids
            )
            for i, response in zip(positions, responses):
                results[i] = response
        await asyncio.gather(
            *(serve_group(e, p) for e, p in groups.items())
        )
        return results

    async def _answer_group(
        self,
        shard_id: int,
        epoch: int,
        queries: tuple,
        trace_ids: tuple = (),
    ) -> list:
        tried: set[int] = set()
        for attempt in range(self.max_attempts):
            worker = self._pick_worker(shard_id, exclude=tried)
            if worker is None:
                target = await self._ensure_replica(shard_id)
                worker = self._workers[target]
                if not worker.alive:
                    continue
            batch_id = next(self._batch_ids)
            future = self._loop.create_future()
            worker.inflight[batch_id] = _Inflight(
                batch_id=batch_id,
                shard_id=shard_id,
                epoch=epoch,
                queries=queries,
                future=future,
                trace_ids=trace_ids,
            )
            self.stats.batches_sent += 1
            rpc_start = self._loop.time()
            self._send(
                worker,
                AnswerBatch(
                    batch_id=batch_id,
                    shard_id=shard_id,
                    epoch=epoch,
                    queries=queries,
                    trace_ids=trace_ids,
                ),
            )
            try:
                responses = await future
            except WorkerDied as died:
                tried.add(worker.worker_id)
                if attempt + 1 >= self.max_attempts:
                    raise
                self.stats.batches_retried += 1
                self._record_retry(worker, shard_id, trace_ids, attempt,
                                   died.reason)
                continue
            self._trace_rpc(
                worker, shard_id, epoch, trace_ids, len(queries),
                attempt, rpc_start,
            )
            return responses
        raise WorkerDied(
            worker_id=-1,
            reason=f"shard {shard_id}: no attempt out of "
            f"{self.max_attempts} reached a live replica",
        )

    def _record_retry(
        self,
        worker: _Worker,
        shard_id: int,
        trace_ids: tuple,
        attempt: int,
        reason: str,
    ) -> None:
        if self.recorder is not None:
            self.recorder.record(
                "batch.retry",
                self._loop.time(),
                trace_ids=trace_ids,
                shard=shard_id,
                dead_worker=worker.worker_id,
                attempt=attempt,
                reason=reason,
            )

    def _trace_rpc(
        self,
        worker: _Worker,
        shard_id: int,
        epoch: int,
        trace_ids: tuple,
        batch: int,
        attempt: int,
        start_s: float,
    ) -> None:
        """Record the coordinator-side send-to-ack window of one RPC."""
        if self.tracer is None:
            return
        self.tracer.record_span(
            "cluster.rpc",
            start_s,
            self._loop.time(),
            trace_id=next((t for t in trace_ids if t is not None), None),
            tid=f"worker-{worker.worker_id}",
            cat="cluster",
            shard=shard_id,
            epoch=epoch,
            batch=batch,
            attempt=attempt,
        )

    # -- observability -----------------------------------------------------
    def cluster_snapshot(self) -> dict:
        """Fault counters + per-worker health, JSON-ready.

        The cluster analog of ``ServeMetrics.snapshot()``: everything an
        operator (or the failure-injection tests) needs to see whether the
        fleet is healthy and what the coordinator did about it when it
        was not.
        """
        now = self._loop.time() if self._loop is not None else 0.0
        workers = {}
        for worker_id, worker in sorted(self._workers.items()):
            workers[str(worker_id)] = {
                "alive": worker.alive,
                "pid": worker.process.pid,
                "shards": sorted(worker.shards),
                "inflight": len(worker.inflight),
                "last_seen_age_s": max(0.0, now - worker.last_seen),
            }
        return {
            "live_workers": list(self.live_workers),
            "batches_sent": self.stats.batches_sent,
            "batches_retried": self.stats.batches_retried,
            "worker_deaths": self.stats.worker_deaths,
            "heartbeat_timeouts": self.stats.heartbeat_timeouts,
            "rebalanced_shards": self.stats.rebalanced_shards,
            "epochs_published": self.stats.epochs_published,
            "workers": workers,
        }

    # -- epoch publish -----------------------------------------------------
    async def publish(self, log: UpdateLog) -> ClusterPublishResult:
        """Atomic cross-shard epoch publish over every live worker.

        The log is fully validated client-side before anything is sent;
        the new epoch becomes admissible only once every live worker has
        acked, so no admitted request can ever target a replica that has
        not built that epoch.  A worker that dies mid-publish loses its
        replicas (rebalanced at the committed epoch); it cannot hold the
        cluster at the old epoch.
        """
        shard_ops = self.registry.split_log(log)
        async with self._topology_lock:
            epoch = self.registry.current_epoch + 1
            acks: list[tuple[_Worker, asyncio.Future]] = []
            for worker in self._workers.values():
                if not worker.alive:
                    continue
                future = self._loop.create_future()
                worker.publish_acks[epoch] = future
                owned = {
                    s: shard_ops[s] for s in sorted(worker.shards) if shard_ops[s]
                }
                # Collect the ack future even if the send fails: the death
                # handler fails it with WorkerDied, which gather collects.
                acks.append((worker, future))
                self._send(worker, PublishEpoch(epoch=epoch, shard_ops=owned))
            outcomes = await asyncio.gather(
                *(f for _, f in acks), return_exceptions=True
            )
            acked: list[int] = []
            lost: list[int] = []
            repacked = 0
            for (worker, _), outcome in zip(acks, outcomes):
                if isinstance(outcome, WorkerDied):
                    lost.append(worker.worker_id)
                elif isinstance(outcome, BaseException):
                    raise outcome
                else:
                    acked.append(worker.worker_id)
                    repacked += outcome.polys_repacked
            if not acked:
                raise NoReplicaError(
                    f"epoch {epoch} publish reached no live worker"
                )
            self.registry.commit_publish(epoch, shard_ops)
            self.stats.epochs_published += 1
            if self.recorder is not None:
                self.recorder.record(
                    "epoch.publish",
                    self._loop.time(),
                    epoch=epoch,
                    acked_workers=sorted(acked),
                    lost_workers=sorted(lost),
                    polys_repacked=repacked,
                )
        # Workers lost mid-publish orphan their shards; rebalance them at
        # the committed epoch (outside the lock — _ensure_replica takes it).
        for shard_id, owners in self._owners.items():
            if not any(self._workers[w].alive for w in owners):
                await self._ensure_replica(shard_id)
        return ClusterPublishResult(
            epoch=epoch,
            polys_repacked=repacked,
            acked_workers=tuple(acked),
            lost_workers=tuple(lost),
        )


class ClusterBackend:
    """The multi-process serving backend for :class:`ServeRuntime`.

    Third sibling of :class:`~repro.serve.workers.RealCryptoBackend`
    (thread pool) and :class:`~repro.serve.workers.SimulatedBackend`
    (virtual time): batches go to worker *processes* via the coordinator.
    Lifecycle belongs to the coordinator's own async context — the
    runtime's ``close()`` is a no-op so one fleet can outlive many
    runtimes (and be drained exactly once).
    """

    def __init__(self, coordinator: ClusterCoordinator):
        self.coordinator = coordinator

    async def answer(self, shard_id: int, requests: list[ServeRequest]) -> list:
        return await self.coordinator.answer(shard_id, requests)

    def close(self) -> None:
        pass
