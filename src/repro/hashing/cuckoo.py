"""Keyed multi-hash cuckoo placement shared by batch PIR and keyword PIR.

Two subsystems use the same table machinery from opposite sides:

* ``repro.batchpir`` amortizes a client's k wanted record indices by
  cuckoo-placing them into query buckets — the *client* runs the walk, the
  server replicates every record into each candidate bucket.
* ``repro.kvpir`` serves arbitrary byte-string keys with no client-side
  directory by cuckoo-placing the *server's* (key, value) records into a
  dense slot table — the client re-derives the candidate slots from the
  key alone and probes all of them.

The hash functions must therefore be identical on both sides and across
processes: candidates come from a keyed blake2b over the key's byte
encoding — deterministic per deployment via ``seed``, with no shared state
beyond this config.  Keys may be non-negative integers (record indices)
or raw byte strings (keyword-PIR keys).

Cuckoo insertion uses the random-walk eviction strategy with a bounded
number of kicks; keys that still cannot be placed land in a bounded stash
(extra query rounds in batch PIR, dedicated always-probed slots in
keyword PIR).  With ``num_buckets >= 1.5 * k`` and three hash functions
the stash is empty with overwhelming probability
(Kirsch-Mitzenmacher-Wieder).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import BatchPlanError, ParameterError

#: Bucket-to-key expansion factor: B = ceil(BUCKET_FACTOR * k).
BUCKET_FACTOR = 1.5

#: Record replication factor = number of candidate buckets per key.
DEFAULT_NUM_HASHES = 3


def key_bytes(key: int | bytes) -> bytes:
    """Canonical byte encoding hashed for a key.

    Integers keep the historical 8-byte little-endian encoding (so batch
    PIR deployments hash identically across versions); byte strings hash
    as-is.
    """
    if isinstance(key, (bytes, bytearray)):
        return bytes(key)
    if isinstance(key, (int, np.integer)):
        if key < 0:
            raise ParameterError("record indices must be non-negative")
        return int(key).to_bytes(8, "little")
    raise ParameterError(f"cuckoo keys must be int or bytes, got {type(key).__name__}")


def num_buckets_for(max_batch: int, factor: float = BUCKET_FACTOR) -> int:
    """Bucket count for a design batch size (at least 2, ~1.5x keys)."""
    if max_batch < 1:
        raise ParameterError("design batch size must be at least 1")
    return max(2, math.ceil(factor * max_batch))


@dataclass(frozen=True)
class CuckooConfig:
    """Deployment-static hashing parameters shared by client and server."""

    num_buckets: int
    num_hashes: int = DEFAULT_NUM_HASHES
    stash_size: int = 4
    max_evictions: int = 128
    seed: int = 0

    def __post_init__(self):
        if self.num_buckets < 2:
            raise ParameterError("cuckoo hashing needs at least 2 buckets")
        if self.num_hashes < 2:
            raise ParameterError("cuckoo hashing needs at least 2 hash functions")
        if self.stash_size < 0:
            raise ParameterError("stash size cannot be negative")
        if self.max_evictions < 1:
            raise ParameterError("eviction bound must be at least 1")

    @classmethod
    def for_batch(cls, max_batch: int, seed: int = 0, **kwargs) -> "CuckooConfig":
        return cls(num_buckets=num_buckets_for(max_batch), seed=seed, **kwargs)

    @property
    def design_batch(self) -> int:
        """Largest key count this table is sized for (inverse of 1.5x rule)."""
        return max(1, int(self.num_buckets / BUCKET_FACTOR))

    def candidates(self, key: int | bytes) -> tuple[int, ...]:
        """The ``num_hashes`` candidate buckets of a key.

        Keyed blake2b keeps the mapping deterministic across processes and
        Python versions (``hash()`` is salted per interpreter run).
        Candidates may collide for small bucket counts; insertion handles
        duplicate candidates gracefully.
        """
        data = key_bytes(key)
        out = []
        for i in range(self.num_hashes):
            h = hashlib.blake2b(
                data,
                digest_size=8,
                key=self.seed.to_bytes(8, "little") + bytes([i]),
            )
            out.append(int.from_bytes(h.digest(), "little") % self.num_buckets)
        return tuple(out)


@dataclass(frozen=True)
class CuckooAssignment:
    """Result of placing one batch of keys: slot per bucket + stash."""

    slots: dict[int, int | bytes]  # bucket id -> key
    stash: tuple[int | bytes, ...]

    @property
    def placed(self) -> int:
        return len(self.slots)


def cuckoo_assign(keys: list[int | bytes], config: CuckooConfig) -> CuckooAssignment:
    """Place distinct keys so each bucket holds at most one.

    Random-walk eviction: when every candidate bucket of a key is taken, a
    uniformly chosen victim among them is kicked out and re-inserted.  The
    walk is bounded by ``max_evictions``; a key whose walk exhausts the
    bound goes to the stash.  Raises :class:`BatchPlanError` when the stash
    bound is exceeded — the typed failure callers can catch to split the
    batch (batch PIR) or rebuild with another seed (keyword PIR).
    """
    if len(set(keys)) != len(keys):
        raise ParameterError("batch indices must be distinct")
    if len(keys) > config.num_buckets + config.stash_size:
        raise BatchPlanError(
            f"{len(keys)} keys cannot fit in {config.num_buckets} buckets "
            f"plus a stash of {config.stash_size}"
        )
    rng = np.random.default_rng(config.seed)
    slots: dict[int, int | bytes] = {}
    stash: list[int | bytes] = []
    for key in keys:
        current = key
        for _ in range(config.max_evictions):
            cands = config.candidates(current)
            free = [b for b in cands if b not in slots]
            if free:
                slots[free[0]] = current
                current = None
                break
            victim_bucket = cands[int(rng.integers(len(cands)))]
            current, slots[victim_bucket] = slots[victim_bucket], current
        if current is not None:
            stash.append(current)
            if len(stash) > config.stash_size:
                raise BatchPlanError(
                    f"cuckoo insertion of {len(keys)} keys into "
                    f"{config.num_buckets} buckets overflowed the stash bound "
                    f"of {config.stash_size}"
                )
    return CuckooAssignment(slots=slots, stash=tuple(stash))
