"""repro.hashing — shared hashing primitives for PIR data placement.

``cuckoo`` holds the keyed multi-hash cuckoo machinery used by two
subsystems with opposite roles: ``repro.batchpir`` cuckoo-places a
client's k wanted indices into query buckets, and ``repro.kvpir``
cuckoo-places the *server's* key-value records into dense PIR slots so
clients can derive candidate locations from a key alone.
"""

from repro.hashing.cuckoo import (
    BUCKET_FACTOR,
    DEFAULT_NUM_HASHES,
    CuckooAssignment,
    CuckooConfig,
    cuckoo_assign,
    key_bytes,
    num_buckets_for,
)

__all__ = [
    "BUCKET_FACTOR",
    "DEFAULT_NUM_HASHES",
    "CuckooAssignment",
    "CuckooConfig",
    "cuckoo_assign",
    "key_bytes",
    "num_buckets_for",
]
