"""Exception types shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ParameterError(ReproError):
    """A parameter set is inconsistent or unsupported."""


class DomainError(ReproError):
    """A polynomial was used in the wrong representation domain."""


class NoiseOverflowError(ReproError):
    """Decryption noise exceeded the correctness bound."""


class LayoutError(ReproError):
    """A database layout or record mapping is invalid."""


class SimulationError(ReproError):
    """The architectural simulator reached an inconsistent state."""
