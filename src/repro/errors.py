"""Exception types shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ParameterError(ReproError):
    """A parameter set is inconsistent or unsupported."""


class DomainError(ReproError):
    """A polynomial was used in the wrong representation domain."""


class NoiseOverflowError(ReproError):
    """Decryption noise exceeded the correctness bound."""


class LayoutError(ReproError):
    """A database layout or record mapping is invalid."""


class SimulationError(ReproError):
    """The architectural simulator reached an inconsistent state."""


class BatchPirError(ReproError):
    """Base class for errors raised by the batch-PIR layer (repro.batchpir)."""


class BatchPlanError(BatchPirError):
    """A batch of indices could not be cuckoo-placed within the stash bound."""


class KvPirError(ReproError):
    """Base class for errors raised by the keyword-PIR layer (repro.kvpir)."""


class KvBuildError(KvPirError):
    """A key-value store could not be cuckoo-placed into its slot table."""


class KeyNotFound(KvPirError):
    """A keyword lookup matched no record tag in any candidate slot.

    False positives (an absent key decoding to garbage) are bounded by the
    tag width: each of the ~``num_hashes + stash`` probed slots matches a
    random tag with probability ``2**-(8 * tag_bytes)``.
    """

    def __init__(self, key: bytes):
        self.key = key
        super().__init__(f"no record tagged for key {key!r}")


class HintPirError(ReproError):
    """Base class for errors raised by the hint-PIR tier (repro.hintpir)."""


class MutateError(ReproError):
    """Base class for errors raised by the update layer (repro.mutate)."""


class RebuildRequired(MutateError):
    """An incremental delta could not be applied within the layout's bounds.

    Raised when cuckoo re-insertion of new keys exhausts both the eviction
    bound and the table's reserved stash slots: the deployment must be
    rebuilt (new hash seed or larger table) instead of patched in place.
    The error carries enough accounting for the caller to size the rebuild.
    """

    def __init__(self, message: str, spilled_keys: int = 0):
        self.spilled_keys = spilled_keys
        super().__init__(message)


class ObsError(ReproError):
    """An observability artifact (spans, trace, digest) failed validation."""


class SloError(ObsError):
    """An SLO specification is malformed or internally inconsistent.

    Raised when parsing a ``--slo`` string or constructing an
    :class:`~repro.obs.slo.SloSpec` with impossible windows, quantiles,
    or objectives — configuration faults, distinct from a *breach*,
    which is a verdict (data), never an exception.
    """


class ServeError(ReproError):
    """Base class for errors raised by the serving runtime (repro.serve)."""


class QueueFullError(ServeError):
    """Admission control shed the query: the shard queue is at capacity."""


class ShuttingDownError(ServeError):
    """The runtime is draining and no longer accepts new queries."""


class RoutingError(ServeError):
    """A query could not be mapped to a shard."""


class ClusterError(ServeError):
    """Base class for errors raised by the multi-process runtime (repro.cluster)."""


class WorkerDied(ClusterError):
    """A worker process exited (or stopped heartbeating) with work in flight.

    The coordinator retries the affected requests on a surviving replica;
    this error surfaces only when every retry budget or replica is
    exhausted, so the caller sees a typed rejection instead of a silently
    dropped or wrong answer.
    """

    def __init__(self, worker_id: int, reason: str):
        self.worker_id = worker_id
        self.reason = reason
        super().__init__(f"worker {worker_id} died: {reason}")


class NoReplicaError(ClusterError):
    """No live worker owns (or could be rebalanced onto) the target shard."""


class StaleEpoch(ServeError):
    """A request was pinned to an epoch the registry no longer serves.

    Versioned hot-swap retains a bounded window of database epochs so
    in-flight requests can finish against the snapshot they were admitted
    under; a client pinned further back than that window gets this typed
    rejection (retry against the current epoch) instead of silently
    decoding against the wrong database version.
    """

    def __init__(self, epoch: int, current: int, oldest_live: int):
        self.epoch = epoch
        self.current = current
        self.oldest_live = oldest_live
        super().__init__(
            f"epoch {epoch} is no longer served (live epochs "
            f"[{oldest_live}, {current}])"
        )


class HintStale(ServeError):
    """A hint-PIR query carried a hint too old to patch with a delta.

    The hint server retains per-epoch dirty-column deltas for a bounded
    window; a client whose offline hint predates that window cannot be
    brought current by a delta-hint and must re-download the full hint.
    Answering anyway would decode to a *wrong byte* (the ``ΔDB @ A @ s``
    term corrupts the noise floor), so the server refuses with this typed
    rejection instead.
    """

    def __init__(self, hint_epoch: int, current: int, oldest_patchable: int):
        self.hint_epoch = hint_epoch
        self.current = current
        self.oldest_patchable = oldest_patchable
        super().__init__(
            f"hint from epoch {hint_epoch} is unpatchable (delta window "
            f"covers [{oldest_patchable}, {current}]); re-download the hint"
        )
