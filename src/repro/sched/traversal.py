"""BFS / DFS / hierarchical-search schedulers for ColTor and ExpandQuery.

These build :class:`~repro.sched.tree.Schedule` objects whose per-step DRAM
transfers reflect the on-chip capacity: BFS spills whole levels when they
do not fit, DFS keeps only a root-to-leaf stack resident but thrashes the
per-level keys, and hierarchical search (HS, Fig. 7c) partitions the tree
into capacity-sized subtrees so both the keys of a level band and the
subtree intermediates stay on chip.  Reduction overlapping (R.O.) shrinks
the transient Dcp working set, allowing deeper subtrees (Section IV-A).

Capacity formulas (Section IV-A):

* HS w/ BFS subtree:  t * key + 2^(t-1) * ct  <= capacity
* HS w/ DFS subtree:  t * key + (t + 1) * ct  <= capacity

All schedules are per query; a core runs one query at a time under QLP.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.params import PirParams
from repro.sched.tree import Schedule, ScheduleConfig, Step, StepKind, Traversal


# ---------------------------------------------------------------------------
# Working-set helpers
# ---------------------------------------------------------------------------

def dcp_transient_bytes(params: PirParams, kind: StepKind, reduction_overlap: bool) -> int:
    """Scratch space the in-flight gadget decomposition occupies.

    Without R.O., Dcp materializes every digit polynomial before the GEMM:
    ℓ ct-sized buffers for an external product (both halves), half that for
    Subs.  With R.O. the digits are reduced just-in-time through the EWU
    (partial GEMM with forwarding), leaving roughly one polynomial in
    flight.
    """
    if reduction_overlap:
        return params.poly_bytes
    if kind is StepKind.CMUX:
        return params.gadget_len * params.ct_bytes
    return params.gadget_len * params.ct_bytes // 2


def max_subtree_depth(
    tree_depth: int,
    capacity_bytes: int,
    ct_bytes: int,
    key_bytes: int,
    transient_bytes: int,
    inner_dfs: bool,
) -> int:
    """Largest subtree depth whose working set fits on chip (Section IV-A)."""
    best = 0
    for t in range(1, tree_depth + 1):
        ct_live = (t + 1) if inner_dfs else max(1, 2 ** (t - 1))
        working_set = t * key_bytes + ct_live * ct_bytes + transient_bytes
        if working_set <= capacity_bytes:
            best = t
        else:
            break
    if best == 0:
        raise ParameterError(
            f"on-chip capacity {capacity_bytes} B cannot hold even a depth-1 "
            f"subtree (key {key_bytes} B + ciphertexts {ct_bytes} B)"
        )
    return best


def _band_depths(
    tree_depth: int, subtree_depth: int, remainder_first: bool = False
) -> list[int]:
    """Partition ``tree_depth`` levels into bands of at most ``subtree_depth``.

    A band boundary at tree position k spills 2^k (expansion) or 2^(d-k)
    (reduction) ciphertexts, so the short remainder band goes where the
    boundary is cheapest: next to the root — first for expansion
    (``remainder_first``), last for reduction.
    """
    bands = []
    remaining = tree_depth
    while remaining > 0:
        take = min(subtree_depth, remaining)
        bands.append(take)
        remaining -= take
    if remainder_first:
        bands.reverse()
    return bands


# ---------------------------------------------------------------------------
# ColTor schedules (2^d leaves -> 1 root; level 0 = leaves)
# ---------------------------------------------------------------------------

def schedule_coltor(params: PirParams, cfg: ScheduleConfig) -> Schedule:
    """Build the ColTor schedule for one query under the chosen policy."""
    depth = params.num_dims
    if depth == 0:
        return Schedule([], params.ct_bytes, params.rgsw_bytes, cfg.traversal)
    builders = {
        Traversal.BFS: _coltor_bfs,
        Traversal.DFS: _coltor_dfs,
        Traversal.HS_BFS: _coltor_hs,
        Traversal.HS_DFS: _coltor_hs,
    }
    return builders[cfg.traversal](params, cfg, depth)


def _coltor_bfs(params: PirParams, cfg: ScheduleConfig, depth: int) -> Schedule:
    """Level-by-level: full key reuse, intermediate spills when levels spill."""
    ct, key = params.ct_bytes, params.rgsw_bytes
    transient = dcp_transient_bytes(params, StepKind.CMUX, cfg.reduction_overlap)
    steps: list[Step] = []
    inputs_resident = False  # leaves start in DRAM (RowSel outputs)
    for level in range(depth):
        outputs = 1 << (depth - level - 1)
        # Outputs stay on chip only if the whole level fits beside the key
        # and a streaming pair of inputs.
        outputs_fit = (
            outputs * ct + key + 2 * ct + transient <= cfg.capacity_bytes
        )
        is_root_level = level == depth - 1
        for i in range(outputs):
            steps.append(
                Step(
                    kind=StepKind.CMUX,
                    level=level,
                    key_load=(i == 0),
                    ct_loads=0 if inputs_resident else 2,
                    ct_stores=1 if (not outputs_fit or is_root_level) else 0,
                )
            )
        inputs_resident = outputs_fit
    return Schedule(steps, ct, key, cfg.traversal)


def _coltor_dfs(params: PirParams, cfg: ScheduleConfig, depth: int) -> Schedule:
    """Post-order: a root-to-leaf stack stays resident; keys thrash (Fig. 7b).

    A node at level k holds its left-child result while the whole right
    subtree is processed, so at any moment one pending ciphertext per path
    level is live.  When the capacity cannot hold the full (depth+1)-deep
    stack, the pending results of the deepest-spanning (highest) levels
    spill to DRAM and are reloaded at consumption.  Capacity left over
    after the resident stack pins the keys of the most frequently visited
    (shallowest) levels; every deeper cmux reloads its key.
    """
    ct, key = params.ct_bytes, params.rgsw_bytes
    transient = dcp_transient_bytes(params, StepKind.CMUX, cfg.reduction_overlap)
    ct_budget = cfg.capacity_bytes - transient - key
    if ct_budget < 2 * ct:
        raise ParameterError(
            f"capacity {cfg.capacity_bytes} B cannot hold one key plus a cmux "
            "operand pair for DFS ColTor"
        )
    resident_slots = min(depth + 1, ct_budget // ct)
    spare = cfg.capacity_bytes - transient - resident_slots * ct
    pinned_levels = min(depth, spare // key)
    steps: list[Step] = []
    loaded_once: set[int] = set()
    # Post-order over node levels of a perfect binary tree (leaves at -1).
    for lvl in _dfs_levels(depth):
        if lvl < pinned_levels:
            need_key = lvl not in loaded_once
            loaded_once.add(lvl)
        else:
            need_key = True
        # Pending left-child results for high levels were spilled.
        spill = 1 if lvl >= resident_slots else 0
        steps.append(
            Step(
                kind=StepKind.CMUX,
                level=lvl,
                key_load=need_key,
                ct_loads=(2 if lvl == 0 else 0) + spill,
                ct_stores=(1 if lvl == depth - 1 else 0) + spill,
            )
        )
    return Schedule(steps, ct, key, cfg.traversal)


def _coltor_hs(params: PirParams, cfg: ScheduleConfig, depth: int) -> Schedule:
    """Hierarchical search: band-partitioned subtrees (Fig. 7c)."""
    ct, key = params.ct_bytes, params.rgsw_bytes
    inner_dfs = cfg.traversal is Traversal.HS_DFS
    transient = dcp_transient_bytes(params, StepKind.CMUX, cfg.reduction_overlap)
    t = cfg.subtree_depth or max_subtree_depth(
        depth, cfg.capacity_bytes, ct, key, transient, inner_dfs
    )
    steps: list[Step] = []
    level_base = 0
    bands = _band_depths(depth, t)
    for band_depth in bands:
        band_inputs = 1 << (depth - level_base)
        subtrees = band_inputs >> band_depth
        for s in range(subtrees):
            # Band keys are loaded by the first subtree and stay resident.
            first_subtree = s == 0
            _emit_subtree_steps(
                steps,
                band_depth,
                level_base,
                first_subtree,
                inner_dfs,
            )
        level_base += band_depth
    return Schedule(
        steps, ct, key, cfg.traversal, subtree_depth=t, notes={"bands": bands}
    )


def _emit_subtree_steps(
    steps: list[Step],
    band_depth: int,
    level_base: int,
    load_keys: bool,
    inner_dfs: bool,
) -> None:
    """One ColTor subtree: load 2^t leaf cts, compute 2^t - 1 cmuxes, store root."""
    total_nodes = (1 << band_depth) - 1
    emitted = 0
    if inner_dfs:
        order = _dfs_levels(band_depth)
    else:
        order = [
            lvl for lvl in range(band_depth) for _ in range(1 << (band_depth - lvl - 1))
        ]
    keys_seen: set[int] = set()
    for lvl in order:
        need_key = load_keys and lvl not in keys_seen
        keys_seen.add(lvl)
        steps.append(
            Step(
                kind=StepKind.CMUX,
                level=level_base + lvl,
                key_load=need_key,
                ct_loads=2 if lvl == 0 else 0,  # subtree leaves come from DRAM
                ct_stores=1 if emitted == total_nodes - 1 else 0,  # subtree root
            )
        )
        emitted += 1


def _dfs_levels(depth: int) -> list[int]:
    """Levels visited by post-order DFS of a perfect binary tree."""
    if depth == 1:
        return [0]
    inner = _dfs_levels(depth - 1)
    return inner + inner + [depth - 1]


# ---------------------------------------------------------------------------
# ExpandQuery schedules (1 root -> 2^L leaves; level 0 = root)
# ---------------------------------------------------------------------------

def schedule_expand(params: PirParams, cfg: ScheduleConfig) -> Schedule:
    """Build the ExpandQuery schedule for one query (mirror of ColTor)."""
    depth = params.num_evks  # log2(D0) levels
    if depth == 0:
        return Schedule([], params.ct_bytes, params.evk_bytes, cfg.traversal)
    builders = {
        Traversal.BFS: _expand_bfs,
        Traversal.DFS: _expand_dfs,
        Traversal.HS_BFS: _expand_hs,
        Traversal.HS_DFS: _expand_hs,
    }
    return builders[cfg.traversal](params, cfg, depth)


def _expand_bfs(params: PirParams, cfg: ScheduleConfig, depth: int) -> Schedule:
    ct, key = params.ct_bytes, params.evk_bytes
    transient = dcp_transient_bytes(params, StepKind.EXPAND, cfg.reduction_overlap)
    steps: list[Step] = []
    inputs_resident = False  # the query ct arrives from DRAM
    for level in range(depth):
        nodes = 1 << level
        outputs = nodes * 2
        outputs_fit = outputs * ct + key + 2 * ct + transient <= cfg.capacity_bytes
        is_last = level == depth - 1
        for i in range(nodes):
            steps.append(
                Step(
                    kind=StepKind.EXPAND,
                    level=level,
                    key_load=(i == 0),
                    ct_loads=0 if inputs_resident else 1,
                    ct_stores=2 if (not outputs_fit or is_last) else 0,
                )
            )
        inputs_resident = outputs_fit
    return Schedule(steps, ct, key, cfg.traversal)


def _expand_dfs(params: PirParams, cfg: ScheduleConfig, depth: int) -> Schedule:
    """Pre-order expansion: one root-to-leaf path resident, keys thrash."""
    ct, key = params.ct_bytes, params.evk_bytes
    transient = dcp_transient_bytes(params, StepKind.EXPAND, cfg.reduction_overlap)
    ct_budget = cfg.capacity_bytes - transient - key
    if ct_budget < 2 * ct:
        raise ParameterError(
            f"capacity {cfg.capacity_bytes} B cannot hold one evk plus an "
            "expansion pair for DFS ExpandQuery"
        )
    resident_slots = min(depth + 1, ct_budget // ct)
    spare = cfg.capacity_bytes - transient - resident_slots * ct
    pinned_levels = min(depth, spare // key)
    loaded_once: set[int] = set()
    steps: list[Step] = []
    # Pre-order walk: emit a node, then descend into both children.  A node
    # at level lvl parks its sibling output while depth-lvl-1 deeper levels
    # expand; siblings beyond the resident stack spill and reload.
    stack = [0]
    while stack:
        lvl = stack.pop()
        if lvl < pinned_levels:
            need_key = lvl not in loaded_once
            loaded_once.add(lvl)
        else:
            need_key = True
        spill = 1 if (depth - lvl) > resident_slots else 0
        steps.append(
            Step(
                kind=StepKind.EXPAND,
                level=lvl,
                key_load=need_key,
                ct_loads=(1 if not steps else 0) + spill,
                ct_stores=(2 if lvl == depth - 1 else 0) + spill,
            )
        )
        if lvl + 1 < depth:
            stack.append(lvl + 1)
            stack.append(lvl + 1)
    return Schedule(steps, ct, key, cfg.traversal)


def _expand_hs(params: PirParams, cfg: ScheduleConfig, depth: int) -> Schedule:
    """Band-partitioned expansion subtrees; band evks pinned on chip."""
    ct, key = params.ct_bytes, params.evk_bytes
    inner_dfs = cfg.traversal is Traversal.HS_DFS
    transient = dcp_transient_bytes(params, StepKind.EXPAND, cfg.reduction_overlap)
    t = cfg.subtree_depth or max_subtree_depth(
        depth, cfg.capacity_bytes, ct, key, transient, inner_dfs
    )
    steps: list[Step] = []
    level_base = 0
    bands = _band_depths(depth, t, remainder_first=True)
    for band_depth in bands:
        subtrees = 1 << level_base
        total_nodes = (1 << band_depth) - 1
        for s in range(subtrees):
            load_keys = s == 0
            keys_seen: set[int] = set()
            if inner_dfs:
                order = [band_depth - 1 - lvl for lvl in _dfs_levels(band_depth)][::-1]
            else:
                order = [lvl for lvl in range(band_depth) for _ in range(1 << lvl)]
            for j, lvl in enumerate(order):
                need_key = load_keys and lvl not in keys_seen
                keys_seen.add(lvl)
                leaf_level = lvl == band_depth - 1
                steps.append(
                    Step(
                        kind=StepKind.EXPAND,
                        level=level_base + lvl,
                        key_load=need_key,
                        ct_loads=1 if j == 0 else 0,  # subtree root ct from DRAM
                        ct_stores=2 if leaf_level else 0,  # band outputs spill
                    )
                )
        level_base += band_depth
    return Schedule(
        steps, ct, key, cfg.traversal, subtree_depth=t, notes={"bands": bands}
    )
