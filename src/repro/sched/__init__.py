"""Operation scheduling for the tree-shaped PIR steps (Section IV-A).

BFS, DFS, and the paper's hierarchical search (HS) with reduction
overlapping (R.O.), plus DRAM-traffic accounting that reproduces Fig. 8.
"""

from repro.sched.traversal import (
    dcp_transient_bytes,
    max_subtree_depth,
    schedule_coltor,
    schedule_expand,
)
from repro.sched.traffic import (
    POLICY_LADDER,
    PolicyResult,
    figure8,
    per_core_capacity,
    reduction_vs_bfs,
    step_traffic,
)
from repro.sched.tree import (
    Schedule,
    ScheduleConfig,
    Step,
    StepKind,
    TrafficSummary,
    Traversal,
)

__all__ = [
    "POLICY_LADDER",
    "PolicyResult",
    "Schedule",
    "ScheduleConfig",
    "Step",
    "StepKind",
    "TrafficSummary",
    "Traversal",
    "dcp_transient_bytes",
    "figure8",
    "max_subtree_depth",
    "per_core_capacity",
    "reduction_vs_bfs",
    "schedule_coltor",
    "schedule_expand",
    "step_traffic",
]
