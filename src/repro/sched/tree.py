"""Schedule representation for the binary-tree PIR steps (Fig. 7).

Both ExpandQuery (1 ciphertext fans out to D0) and ColTor (2^d entries
reduce to 1) are binary trees whose nodes consume a level-specific shared
key (evk_r / ct_RGSW).  A :class:`Schedule` is the ordered list of compute
steps a traversal produces, each annotated with the DRAM transfers the
on-chip capacity forces at that point.  The same object feeds both the
Fig. 8 traffic accounting and the cycle-level simulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ParameterError


class StepKind(enum.Enum):
    """Compute operation performed by one schedule step."""

    CMUX = "cmux"  # ColTor node: bit ⊡ (Y - X) + X
    EXPAND = "expand"  # ExpandQuery node: Subs + even/odd combine


class Traversal(enum.Enum):
    """Operation scheduling policies from Section IV-A."""

    BFS = "bfs"
    DFS = "dfs"
    HS_BFS = "hs-bfs"  # hierarchical search, subtrees processed BFS
    HS_DFS = "hs-dfs"  # hierarchical search, subtrees processed DFS


@dataclass(frozen=True)
class Step:
    """One tree-node computation plus the DRAM traffic issued around it."""

    kind: StepKind
    level: int  # tree level (0 = leaves for ColTor, 0 = root for Expand)
    key_load: bool  # shared key (evk / RGSW) fetched from DRAM
    ct_loads: int  # BFV ciphertexts fetched from DRAM
    ct_stores: int  # BFV ciphertexts written back to DRAM


@dataclass(frozen=True)
class TrafficSummary:
    """DRAM bytes by category — the Fig. 8 bar segments."""

    ct_load_bytes: float
    ct_store_bytes: float
    key_load_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.ct_load_bytes + self.ct_store_bytes + self.key_load_bytes

    def scale(self, factor: float) -> "TrafficSummary":
        return TrafficSummary(
            ct_load_bytes=self.ct_load_bytes * factor,
            ct_store_bytes=self.ct_store_bytes * factor,
            key_load_bytes=self.key_load_bytes * factor,
        )


@dataclass
class Schedule:
    """Ordered steps for one query's tree, plus aggregate traffic."""

    steps: list[Step]
    ct_bytes: int
    key_bytes: int
    traversal: Traversal
    subtree_depth: int | None = None
    notes: dict = field(default_factory=dict)

    def traffic(self) -> TrafficSummary:
        return TrafficSummary(
            ct_load_bytes=float(sum(s.ct_loads for s in self.steps)) * self.ct_bytes,
            ct_store_bytes=float(sum(s.ct_stores for s in self.steps)) * self.ct_bytes,
            key_load_bytes=float(sum(1 for s in self.steps if s.key_load))
            * self.key_bytes,
        )

    @property
    def num_compute_steps(self) -> int:
        return len(self.steps)

    def levels_used(self) -> set[int]:
        return {s.level for s in self.steps}


@dataclass(frozen=True)
class ScheduleConfig:
    """Knobs for building a schedule."""

    capacity_bytes: int
    traversal: Traversal
    reduction_overlap: bool = False
    subtree_depth: int | None = None  # HS only; derived from capacity if None

    def __post_init__(self):
        if self.capacity_bytes <= 0:
            raise ParameterError("on-chip capacity must be positive")
        if self.subtree_depth is not None and self.subtree_depth < 1:
            raise ParameterError("subtree depth must be >= 1")
