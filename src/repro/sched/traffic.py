"""DRAM-traffic accounting for the scheduling study (Fig. 8, Section IV-A).

Produces, for each scheduling policy, the per-category DRAM bytes moved by
ExpandQuery and ColTor — the paper's Fig. 8 bars — and the headline
reduction ratios versus the BFS baseline.  Capacities are quoted chip-wide
(the paper's "64 MB / 128 MB cache"); with query-level parallelism each
query sees capacity/num_cores of scratchpad.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import PirParams
from repro.sched.traversal import schedule_coltor, schedule_expand
from repro.sched.tree import ScheduleConfig, Traversal, TrafficSummary


@dataclass(frozen=True)
class PolicyResult:
    """Traffic for one (policy, step) combination, batch-scaled."""

    label: str
    step: str  # "ExpandQuery" | "ColTor"
    traffic: TrafficSummary
    subtree_depth: int | None

    @property
    def total_gb(self) -> float:
        return self.traffic.total_bytes / 1e9


#: The policy ladder of Fig. 8, in presentation order.
POLICY_LADDER: tuple[tuple[str, Traversal, bool], ...] = (
    ("BFS", Traversal.BFS, False),
    ("DFS", Traversal.DFS, False),
    ("HS (w/ BFS)", Traversal.HS_BFS, False),
    ("HS (w/ DFS)", Traversal.HS_DFS, False),
    ("HS+R.O. (w/ DFS)", Traversal.HS_DFS, True),
)


def per_core_capacity(chip_capacity_bytes: int, num_cores: int = 32) -> int:
    """QLP places one query per core; each sees its core's slice."""
    return chip_capacity_bytes // num_cores


def step_traffic(
    params: PirParams,
    step: str,
    chip_capacity_bytes: int,
    batch: int,
    num_cores: int = 32,
) -> list[PolicyResult]:
    """Fig. 8 bars for one step: traffic per policy at a given capacity."""
    capacity = per_core_capacity(chip_capacity_bytes, num_cores)
    results = []
    for label, traversal, ro in POLICY_LADDER:
        cfg = ScheduleConfig(
            capacity_bytes=capacity, traversal=traversal, reduction_overlap=ro
        )
        if step == "ExpandQuery":
            schedule = schedule_expand(params, cfg)
        elif step == "ColTor":
            schedule = schedule_coltor(params, cfg)
        else:
            raise ValueError(f"unknown step {step!r}")
        results.append(
            PolicyResult(
                label=label,
                step=step,
                traffic=schedule.traffic().scale(batch),
                subtree_depth=schedule.subtree_depth,
            )
        )
    return results


def reduction_vs_bfs(results: list[PolicyResult]) -> dict[str, float]:
    """Relative DRAM-access reduction of each policy against BFS (Fig. 8 line)."""
    baseline = next(r for r in results if r.label == "BFS").traffic.total_bytes
    return {r.label: baseline / r.traffic.total_bytes for r in results}


def figure8(
    params: PirParams,
    batch: int = 32,
    chip_capacities: tuple[int, ...] = (64 << 20, 128 << 20),
    num_cores: int = 32,
) -> dict[str, dict[int, list[PolicyResult]]]:
    """Full Fig. 8 dataset: {step: {chip_capacity: [policy results]}}."""
    return {
        step: {
            cap: step_traffic(params, step, cap, batch, num_cores)
            for cap in chip_capacities
        }
        for step in ("ExpandQuery", "ColTor")
    }
