"""Serving metrics: throughput, latency percentiles, queue and batch shape.

One :class:`ServeMetrics` instance is shared by every shard dispatcher of a
:class:`~repro.serve.dispatcher.ServeRuntime`.  All timestamps are event-loop
time (``loop.time()``), so the same accounting works under the wall clock and
under the virtual-time loop used for million-user simulations.

Recording is built on :class:`~repro.obs.metrics.MetricsRegistry`: counters
for the admission/served/failed bookkeeping and streaming quantile sketches
for the latency and queue-wait distributions, so memory stays bounded no
matter how long a run streams — the grow-forever reservoir lists are gone.
A windowed :class:`~repro.obs.metrics.TimeSeries` feeds the live view
(``qps`` / ``p99_s`` / ``rejection_rate`` per window) via
:meth:`ServeMetrics.live_series`.

Percentiles over an *empty* run are ``None`` (JSON ``null``) — a run that
served nothing must be distinguishable from one that served instantly.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.obs.metrics import MetricsRegistry


def percentile(values, p: float) -> float | None:
    """Linear-interpolation percentile; ``None`` on an empty sample.

    ``None`` — not ``0.0`` — because a real zero-latency sample must stay
    distinguishable from having no samples at all.
    """
    if len(values) == 0:
        return None
    return float(np.percentile(np.asarray(values, dtype=np.float64), p))


class ServeMetrics:
    """Counters and sketches for one serving run."""

    #: Width of the live-view windows, in event-loop seconds.
    WINDOW_S = 1.0

    def __init__(self, num_shards: int = 1, registry: MetricsRegistry | None = None):
        self.num_shards = num_shards
        self.registry = registry if registry is not None else MetricsRegistry()
        self._submitted = self.registry.counter("serve.submitted")
        self._accepted = self.registry.counter("serve.accepted")
        self._rejected = self.registry.counter("serve.rejected")
        self._served = self.registry.counter("serve.served")
        self._failed = self.registry.counter("serve.failed")
        self._latency = self.registry.histogram("serve.latency_s")
        self._queue_wait = self.registry.histogram("serve.queue_wait_s")
        self._queue_depth = self.registry.gauge("serve.queue_depth")
        self._series = self.registry.series("serve.live", window_s=self.WINDOW_S)
        #: Exact small-cardinality tallies (bounded by max_batch / num_shards).
        self._batch_sizes: Counter = Counter()
        self._batch_sum = 0
        self.served_by_shard: Counter = Counter()
        self.failed_by_shard: Counter = Counter()
        self.first_arrival_s: float | None = None
        self.last_finish_s: float | None = None

    # -- recording hooks (called by the dispatcher) -----------------------
    def record_submit(self, accepted: bool, now_s: float) -> None:
        self._submitted.inc()
        if accepted:
            self._accepted.inc()
            if self.first_arrival_s is None:
                self.first_arrival_s = now_s
        else:
            self._rejected.inc()
        self._series.record_submit(accepted, now_s)

    def record_queue_depth(self, depth: int) -> None:
        """Sampled on every accepted enqueue, so peaks are visible."""
        self._queue_depth.set(depth)

    def record_dispatch(self, shard_id: int, batch_size: int, depth_after: int) -> None:
        self._batch_sizes[batch_size] += 1
        self._batch_sum += batch_size
        self._queue_depth.set(depth_after)

    def record_served(
        self, shard_id: int, latency_s: float, queue_wait_s: float, finish_s: float
    ) -> None:
        self._served.inc()
        self.served_by_shard[shard_id] += 1
        self._latency.record(latency_s)
        self._queue_wait.record(queue_wait_s)
        self._series.record_served(latency_s, finish_s)
        self._update_last_finish(finish_s)

    def record_failed(self, shard_id: int, count: int = 1, finish_s: float | None = None) -> None:
        """A batch failed: count it per shard and close the serving window.

        ``finish_s`` is the failure time; without it a run whose last
        event is a failed batch would under-report ``elapsed_s`` (and so
        inflate ``achieved_qps``), because only successes used to advance
        ``last_finish_s``.
        """
        self._failed.inc(count)
        self.failed_by_shard[shard_id] += count
        if finish_s is not None:
            self._series.record_failed(finish_s, count)
            self._update_last_finish(finish_s)

    def _update_last_finish(self, finish_s: float) -> None:
        if self.last_finish_s is None or finish_s > self.last_finish_s:
            self.last_finish_s = finish_s

    # -- counter attribute compatibility ----------------------------------
    @property
    def series(self):
        """The windowed live :class:`~repro.obs.metrics.TimeSeries`.

        The SLO evaluator and health sampler aggregate over this directly
        (raw counts, not the rounded rows of :meth:`live_series`).
        """
        return self._series

    @property
    def queue_depth(self) -> int:
        """Most recently sampled queue depth (instantaneous gauge)."""
        return int(self._queue_depth.value)

    @property
    def submitted(self) -> int:
        return self._submitted.value

    @property
    def accepted(self) -> int:
        return self._accepted.value

    @property
    def rejected(self) -> int:
        return self._rejected.value

    @property
    def served(self) -> int:
        return self._served.value

    @property
    def failed(self) -> int:
        return self._failed.value

    # -- derived quantities -----------------------------------------------
    @property
    def elapsed_s(self) -> float:
        if self.first_arrival_s is None or self.last_finish_s is None:
            return 0.0
        return max(0.0, self.last_finish_s - self.first_arrival_s)

    @property
    def achieved_qps(self) -> float:
        elapsed = self.elapsed_s
        return self.served / elapsed if elapsed > 0 else 0.0

    def latency_percentiles(self) -> dict[str, float | None]:
        """Sketch quantiles (nearest-rank within 1%); ``None`` when empty."""
        return {
            "p50_s": self._latency.quantile(0.50),
            "p95_s": self._latency.quantile(0.95),
            "p99_s": self._latency.quantile(0.99),
        }

    def queue_wait_percentiles(self) -> dict[str, float | None]:
        """Queue wait is the signal admission control acts on — same
        percentile treatment as end-to-end latency, not just a mean."""
        return {
            "p50_s": self._queue_wait.quantile(0.50),
            "p95_s": self._queue_wait.quantile(0.95),
            "p99_s": self._queue_wait.quantile(0.99),
        }

    def batch_histogram(self) -> dict[int, int]:
        """Batch size -> number of dispatches at that size (exact)."""
        return dict(sorted(self._batch_sizes.items()))

    @property
    def mean_batch(self) -> float:
        dispatches = sum(self._batch_sizes.values())
        return self._batch_sum / dispatches if dispatches else 0.0

    @property
    def max_queue_depth(self) -> int:
        return int(self._queue_depth.max)

    def live_series(self) -> list[dict]:
        """Windowed ``qps`` / ``p99_s`` / ``rejection_rate`` rows (live view)."""
        return self._series.rows()

    def snapshot(self) -> dict:
        """JSON-serializable summary of the run."""
        return {
            "submitted": self.submitted,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "served": self.served,
            "failed": self.failed,
            "elapsed_s": self.elapsed_s,
            "achieved_qps": self.achieved_qps,
            "latency": self.latency_percentiles()
            | {"mean_s": self._latency.mean},
            "queue_wait": self.queue_wait_percentiles()
            | {"mean_s": self._queue_wait.mean},
            "queue_wait_mean_s": self._queue_wait.mean,
            "mean_batch": self.mean_batch,
            "max_queue_depth": self.max_queue_depth,
            "batch_histogram": {str(k): v for k, v in self.batch_histogram().items()},
            "served_by_shard": {str(k): v for k, v in sorted(self.served_by_shard.items())},
            "failed_by_shard": {str(k): v for k, v in sorted(self.failed_by_shard.items())},
        }
