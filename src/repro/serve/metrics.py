"""Serving metrics: throughput, latency percentiles, queue and batch shape.

One :class:`ServeMetrics` instance is shared by every shard dispatcher of a
:class:`~repro.serve.dispatcher.ServeRuntime`.  All timestamps are event-loop
time (``loop.time()``), so the same accounting works under the wall clock and
under the virtual-time loop used for million-user simulations.
"""

from __future__ import annotations

from collections import Counter

import numpy as np


def percentile(values, p: float) -> float:
    """Linear-interpolation percentile; 0.0 on an empty sample."""
    if len(values) == 0:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), p))


class ServeMetrics:
    """Counters and reservoirs for one serving run."""

    def __init__(self, num_shards: int = 1):
        self.num_shards = num_shards
        self.submitted = 0
        self.accepted = 0
        self.rejected = 0
        self.served = 0
        self.failed = 0
        self.latencies_s: list[float] = []
        self.queue_waits_s: list[float] = []
        self.batch_sizes: list[int] = []
        self.queue_depths: list[int] = []
        self.served_by_shard: Counter = Counter()
        self.failed_by_shard: Counter = Counter()
        self.first_arrival_s: float | None = None
        self.last_finish_s: float | None = None

    # -- recording hooks (called by the dispatcher) -----------------------
    def record_submit(self, accepted: bool, now_s: float) -> None:
        self.submitted += 1
        if accepted:
            self.accepted += 1
            if self.first_arrival_s is None:
                self.first_arrival_s = now_s
        else:
            self.rejected += 1

    def record_queue_depth(self, depth: int) -> None:
        """Sampled on every accepted enqueue, so peaks are visible."""
        self.queue_depths.append(depth)

    def record_dispatch(self, shard_id: int, batch_size: int, depth_after: int) -> None:
        self.batch_sizes.append(batch_size)
        self.queue_depths.append(depth_after)

    def record_served(
        self, shard_id: int, latency_s: float, queue_wait_s: float, finish_s: float
    ) -> None:
        self.served += 1
        self.served_by_shard[shard_id] += 1
        self.latencies_s.append(latency_s)
        self.queue_waits_s.append(queue_wait_s)
        self._update_last_finish(finish_s)

    def record_failed(self, shard_id: int, count: int = 1, finish_s: float | None = None) -> None:
        """A batch failed: count it per shard and close the serving window.

        ``finish_s`` is the failure time; without it a run whose last
        event is a failed batch would under-report ``elapsed_s`` (and so
        inflate ``achieved_qps``), because only successes used to advance
        ``last_finish_s``.
        """
        self.failed += count
        self.failed_by_shard[shard_id] += count
        if finish_s is not None:
            self._update_last_finish(finish_s)

    def _update_last_finish(self, finish_s: float) -> None:
        if self.last_finish_s is None or finish_s > self.last_finish_s:
            self.last_finish_s = finish_s

    # -- derived quantities -----------------------------------------------
    @property
    def elapsed_s(self) -> float:
        if self.first_arrival_s is None or self.last_finish_s is None:
            return 0.0
        return max(0.0, self.last_finish_s - self.first_arrival_s)

    @property
    def achieved_qps(self) -> float:
        elapsed = self.elapsed_s
        return self.served / elapsed if elapsed > 0 else 0.0

    def latency_percentiles(self) -> dict[str, float]:
        return {
            "p50_s": percentile(self.latencies_s, 50),
            "p95_s": percentile(self.latencies_s, 95),
            "p99_s": percentile(self.latencies_s, 99),
        }

    def batch_histogram(self) -> dict[int, int]:
        """Batch size -> number of dispatches at that size."""
        return dict(sorted(Counter(self.batch_sizes).items()))

    @property
    def mean_batch(self) -> float:
        return float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0

    @property
    def max_queue_depth(self) -> int:
        return max(self.queue_depths, default=0)

    def snapshot(self) -> dict:
        """JSON-serializable summary of the run."""
        return {
            "submitted": self.submitted,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "served": self.served,
            "failed": self.failed,
            "elapsed_s": self.elapsed_s,
            "achieved_qps": self.achieved_qps,
            "latency": self.latency_percentiles()
            | {"mean_s": float(np.mean(self.latencies_s)) if self.latencies_s else 0.0},
            "queue_wait_mean_s": (
                float(np.mean(self.queue_waits_s)) if self.queue_waits_s else 0.0
            ),
            "mean_batch": self.mean_batch,
            "max_queue_depth": self.max_queue_depth,
            "batch_histogram": {str(k): v for k, v in self.batch_histogram().items()},
            "served_by_shard": {str(k): v for k, v in sorted(self.served_by_shard.items())},
            "failed_by_shard": {str(k): v for k, v in sorted(self.failed_by_shard.items())},
        }
