"""Open-loop load generation: Poisson, bursty, and diurnal arrivals.

Open loop means arrivals do not wait for responses — the generator keeps
firing at its own rate regardless of how far behind the server falls,
which is what exposes queueing collapse and makes admission control earn
its keep.  Arrival schedules are plain arrays of absolute times so the
same schedule replays under the wall clock or the virtual-time loop.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError, ServeError
from repro.systems.queueing import poisson_arrival_times


def poisson_arrivals(rate_qps: float, num: int, seed: int = 0) -> np.ndarray:
    """Homogeneous Poisson process: exponential inter-arrival gaps.

    Seed-taking wrapper over the shared sampler
    (:func:`repro.systems.queueing.poisson_arrival_times`), so the serving
    load generator and the discrete-event queue models draw identical
    schedules.
    """
    return poisson_arrival_times(rate_qps, num, np.random.default_rng(seed))


def _inhomogeneous_arrivals(rate_fn, num: int, seed: int) -> np.ndarray:
    """Time-varying Poisson process by per-arrival rate evaluation.

    Each gap is drawn at the instantaneous rate at the previous arrival —
    accurate while the rate changes slowly relative to one gap, which holds
    for the burst/diurnal periods used here.
    """
    rng = np.random.default_rng(seed)
    times = np.empty(num)
    t = 0.0
    for i in range(num):
        rate = rate_fn(t)
        if rate <= 0:
            raise ParameterError("instantaneous rate must stay positive")
        t += rng.exponential(1.0 / rate)
        times[i] = t
    return times


def bursty_arrivals(
    base_qps: float,
    burst_qps: float,
    num: int,
    period_s: float = 1.0,
    duty: float = 0.5,
    seed: int = 0,
) -> np.ndarray:
    """On/off modulated Poisson: ``burst_qps`` for ``duty`` of each period."""
    if not 0.0 < duty < 1.0:
        raise ParameterError("duty cycle must be in (0, 1)")
    if period_s <= 0:
        raise ParameterError("burst period must be positive")

    def rate(t: float) -> float:
        return burst_qps if (t % period_s) < duty * period_s else base_qps

    return _inhomogeneous_arrivals(rate, num, seed)


def diurnal_arrivals(
    mean_qps: float,
    num: int,
    period_s: float = 86400.0,
    amplitude: float = 0.5,
    seed: int = 0,
) -> np.ndarray:
    """Sinusoidal day/night rate: ``mean * (1 + A * sin(2*pi*t/period))``."""
    if not 0.0 <= amplitude < 1.0:
        raise ParameterError("amplitude must be in [0, 1)")

    def rate(t: float) -> float:
        return mean_qps * (1.0 + amplitude * math.sin(2.0 * math.pi * t / period_s))

    return _inhomogeneous_arrivals(rate, num, seed)


def uniform_indices(num_records: int, num: int, seed: int = 0) -> np.ndarray:
    """Uniformly random record indices (every shard equally hot)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, num_records, size=num)


def zipf_indices(num_records: int, num: int, a: float = 1.2, seed: int = 0) -> np.ndarray:
    """Zipf-skewed indices: a hot head concentrated on the first shards.

    ``rng.zipf`` draws unbounded ranks; draws beyond ``num_records`` are
    rejection-sampled away rather than reduced mod ``num_records`` — the
    modulo would alias the entire unbounded tail back onto the hottest
    indices, silently reshaping the distribution (index 0 would absorb the
    mass of ranks ``num_records + 1``, ``2 * num_records + 1``, ...).
    The result is exactly Zipf truncated to ``[0, num_records)``.
    """
    if a <= 1.0:
        raise ParameterError("Zipf exponent must be greater than 1")
    if num_records < 1:
        raise ParameterError("need at least one record to draw indices")
    rng = np.random.default_rng(seed)
    out = np.empty(num, dtype=np.int64)
    filled = 0
    while filled < num:
        # Acceptance is >= 1/zeta(a) (> 17% even at num_records=1, a=1.2),
        # so modest oversampling converges in a handful of rounds.
        draws = rng.zipf(a, size=max(2 * (num - filled), 64)) - 1
        draws = draws[draws < num_records]
        take = min(draws.size, num - filled)
        out[filled : filled + take] = draws[:take]
        filled += take
    return out


@dataclass
class LoadReport:
    """Outcome of one open-loop run (admission + completion accounting)."""

    offered: int
    completed: int
    rejected: int
    errored: int
    offered_qps: float
    metrics: dict
    #: Completed :class:`~repro.serve.dispatcher.ServeResult`\ s, populated
    #: only when ``run_open_loop(collect_results=True)`` — correctness
    #: audits (e.g. the hint tier's never-a-wrong-byte check) need the
    #: responses, not just the counters.
    results: list | None = None

    @property
    def reject_rate(self) -> float:
        return self.rejected / self.offered if self.offered else 0.0


async def run_open_loop(
    runtime,
    arrivals: np.ndarray,
    indices: np.ndarray,
    drain: bool = True,
    collect_results: bool = False,
) -> LoadReport:
    """Drive ``runtime`` with the given arrival schedule.

    At each arrival time a request for the paired record index is submitted
    without waiting for earlier responses.  Shed queries count as rejected;
    backend failures as errored.  Returns the combined report after
    (optionally) draining the runtime.
    """
    if len(arrivals) != len(indices):
        raise ParameterError("need one record index per arrival")
    loop = asyncio.get_running_loop()
    epoch = loop.time()
    futures: list[asyncio.Future] = []
    rejected = 0
    for offset, index in zip(arrivals, indices):
        delay = epoch + float(offset) - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        try:
            futures.append(runtime.submit(runtime.registry.make_request(int(index))))
        except ServeError:
            rejected += 1
    if drain:
        await runtime.drain()
    outcomes = await asyncio.gather(*futures, return_exceptions=True)
    errored = sum(1 for o in outcomes if isinstance(o, BaseException))
    offered_span = float(arrivals[-1] - arrivals[0]) if len(arrivals) > 1 else 0.0
    return LoadReport(
        offered=len(arrivals),
        completed=len(outcomes) - errored,
        rejected=rejected,
        errored=errored,
        offered_qps=(len(arrivals) - 1) / offered_span if offered_span > 0 else 0.0,
        metrics=runtime.metrics.snapshot(),
        results=(
            [o for o in outcomes if not isinstance(o, BaseException)]
            if collect_results
            else None
        ),
    )
