"""Worker pools and clocks: real crypto execution vs virtual-time simulation.

The dispatcher is written against plain asyncio (``loop.time()`` /
``asyncio.sleep``); what varies between deployment and simulation is the
*event loop*, not the serving code:

* real mode — the standard loop plus :class:`RealCryptoBackend`, which runs
  ``PirServer.answer_batch`` on a thread pool so the event loop stays
  responsive while cores grind external products.
* sim mode — :class:`VirtualTimeLoop`, an event loop whose clock jumps
  straight to the next timer instead of sleeping, plus
  :class:`SimulatedBackend`, which "serves" a batch by sleeping for the
  :class:`~repro.arch.simulator.IveSimulator` batched latency.  A 10k-query
  load test at paper scale finishes in wall-seconds.
* cluster mode — ``repro.cluster.ClusterBackend``, the multi-process
  sibling: the same backend contract, but batches cross a pipe to worker
  processes so real-crypto throughput scales with cores, not one GIL.
"""

from __future__ import annotations

import asyncio
import math
import selectors
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.obs.trace import Tracer
from repro.serve.registry import RealShardRegistry, ServeRequest, SimShardRegistry


def _trace_backend(
    tracer: Tracer | None,
    name: str,
    shard_id: int,
    requests: list[ServeRequest],
    start_s: float,
    end_s: float,
) -> None:
    """Record one backend-execution span attributed to the batch's trace."""
    if tracer is None:
        return
    tracer.record_span(
        name,
        start_s,
        end_s,
        trace_id=next((r.trace_id for r in requests if r.trace_id is not None), None),
        tid=f"shard-{shard_id}",
        cat="backend",
        batch=len(requests),
    )


class _InstantSelector(selectors.SelectSelector):
    """A selector that never blocks: waiting advances the virtual clock."""

    loop: "VirtualTimeLoop | None" = None

    def select(self, timeout=None):
        if timeout is None:
            # No ready callbacks and no timers: real asyncio would block
            # forever.  In virtual time that is a deadlock — fail loudly.
            raise SimulationError(
                "virtual event loop stalled: tasks are waiting on something "
                "that no timer will ever wake"
            )
        if timeout > 0 and self.loop is not None:
            self.loop.advance(timeout)
        return super().select(0)


class VirtualTimeLoop(asyncio.SelectorEventLoop):
    """Event loop running in virtual time.

    ``loop.time()`` starts at 0.0 and only moves when every runnable task
    has yielded and the loop would otherwise sleep until its next timer —
    the idle wait is skipped and the clock jumps forward instead.  All of
    ``asyncio.sleep`` / ``wait_for`` / timeouts work unmodified, which is
    what lets the *same* dispatcher code serve real traffic and simulate
    million-query workloads.
    """

    def __init__(self):
        selector = _InstantSelector()
        super().__init__(selector)
        selector.loop = self
        self._virtual_now = 0.0

    def time(self) -> float:
        return self._virtual_now

    def advance(self, seconds: float) -> None:
        advanced = self._virtual_now + seconds
        if advanced <= self._virtual_now:
            # The requested step is below one ulp of the current time (the
            # loop asks for `when - now`, which floating point can round to
            # something that no longer moves the sum).  Force minimal
            # progress so the loop cannot spin at a frozen clock.
            advanced = math.nextafter(self._virtual_now, math.inf)
        self._virtual_now = advanced


def run_in_virtual_time(coro) -> tuple[object, float]:
    """Run ``coro`` to completion on a fresh virtual-time loop.

    Returns ``(result, virtual_elapsed_seconds)``.
    """
    loop = VirtualTimeLoop()
    try:
        result = loop.run_until_complete(coro)
        return result, loop.time()
    finally:
        loop.run_until_complete(loop.shutdown_asyncgens())
        loop.close()


@dataclass(frozen=True)
class SimResponse:
    """Placeholder response carried through the sim-mode serving path."""

    global_index: int


class RealCryptoBackend:
    """Executes real ``PirServer.answer_batch`` calls on worker threads.

    numpy releases the GIL for the heavy modular arithmetic, so a small
    thread pool gives genuine overlap between shards; a process pool is not
    worth the ciphertext pickling cost at these sizes.
    """

    def __init__(
        self,
        registry: RealShardRegistry,
        max_workers: int | None = None,
        tracer: Tracer | None = None,
    ):
        self.registry = registry
        self.tracer = tracer
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="pir-worker"
        )

    async def answer(self, shard_id: int, requests: list[ServeRequest]) -> list:
        server = self.registry.server(shard_id)
        queries = [r.query for r in requests]
        loop = asyncio.get_running_loop()
        start_s = loop.time()
        responses = await loop.run_in_executor(
            self._pool, server.answer_batch, queries
        )
        _trace_backend(
            self.tracer, "backend.real", shard_id, requests, start_s, loop.time()
        )
        return responses

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)


class SimulatedBackend:
    """Serves a batch by sleeping for the modeled batched latency."""

    def __init__(self, registry: SimShardRegistry, tracer: Tracer | None = None):
        self.registry = registry
        self.tracer = tracer

    async def answer(self, shard_id: int, requests: list[ServeRequest]) -> list:
        loop = asyncio.get_running_loop()
        start_s = loop.time()
        await asyncio.sleep(self.registry.service_seconds(len(requests)))
        _trace_backend(
            self.tracer, "backend.sim", shard_id, requests, start_s, loop.time()
        )
        return [SimResponse(r.global_index) for r in requests]

    def close(self) -> None:  # symmetry with RealCryptoBackend
        pass
