"""Shard registry: one logical database partitioned across server replicas.

Record-level parallelism at the serving layer (Section V): a logical
database of R records is split into contiguous shards, each held by its own
replica.  Two registries implement the same routing interface:

* :class:`RealShardRegistry` — every shard is a real :class:`PirServer`
  over a slice of the records, sharing one client ring so queries and
  responses are byte-correct end to end.
* :class:`SimShardRegistry` — geometry only; each shard is backed by the
  :class:`~repro.systems.scale_up.ScaleUpSystem` latency model so
  million-user load tests run in simulated time.

Both reuse the Section V placement rule
(:func:`repro.systems.scale_up.choose_placement`) to decide whether a
shard's preprocessed slice lives in HBM or spills to LPDDR.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field

import numpy as np

from repro.arch.config import IveConfig
from repro.errors import ParameterError, RoutingError
from repro.he import modmath
from repro.params import PirParams
from repro.pir.client import PirClient, PirQuery, PirResponse
from repro.pir.database import PirDatabase
from repro.pir.server import PirServer
from repro.systems.scale_up import DbPlacement, ScaleUpSystem, choose_placement


class ShardMap:
    """Contiguous, near-equal partition of ``num_records`` across shards."""

    def __init__(self, num_records: int, num_shards: int):
        if num_shards < 1:
            raise ParameterError("need at least one shard")
        if num_records < num_shards:
            raise ParameterError(
                f"cannot split {num_records} records across {num_shards} shards"
            )
        self.num_records = num_records
        self.num_shards = num_shards
        base, extra = divmod(num_records, num_shards)
        sizes = [base + (1 if s < extra else 0) for s in range(num_shards)]
        self.starts = [0] * num_shards
        for s in range(1, num_shards):
            self.starts[s] = self.starts[s - 1] + sizes[s - 1]
        self.sizes = sizes

    @staticmethod
    def _as_index(value, what: str) -> int:
        """Coerce to a plain int, rejecting bools/floats with a typed error.

        Routing is the serving door: malformed client input must surface
        as the repo's typed :class:`RoutingError` (shed and counted), never
        as a bare ``TypeError``/``ValueError``/``IndexError`` escaping from
        ``bisect`` or a list subscript — and a float like ``2.5`` must not
        silently route to a fractional local index.
        """
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            raise RoutingError(
                f"{what} must be an integer, got {type(value).__name__}"
            )
        return int(value)

    def check_shard(self, shard_id: int) -> int:
        """Coerce + bounds-check a shard id; typed RoutingError otherwise.

        The single shard-id validation every layer shares (registries,
        the runtime's submit door) so the accepted types and the error
        shape cannot drift between them.
        """
        shard_id = self._as_index(shard_id, "shard id")
        if not 0 <= shard_id < self.num_shards:
            raise RoutingError(
                f"shard {shard_id} out of range [0, {self.num_shards})"
            )
        return shard_id

    def route(self, global_index: int) -> tuple[int, int]:
        """Global record index -> (shard id, shard-local index)."""
        global_index = self._as_index(global_index, "record index")
        if not 0 <= global_index < self.num_records:
            raise RoutingError(
                f"record {global_index} out of range [0, {self.num_records})"
            )
        shard = bisect.bisect_right(self.starts, global_index) - 1
        return shard, global_index - self.starts[shard]

    def global_index(self, shard_id: int, local_index: int) -> int:
        shard_id = self.check_shard(shard_id)
        local_index = self._as_index(local_index, "local index")
        if not 0 <= local_index < self.sizes[shard_id]:
            raise RoutingError(
                f"local index {local_index} out of range for shard {shard_id}"
            )
        return self.starts[shard_id] + local_index


@dataclass
class ServeRequest:
    """One routed query travelling through the serving runtime."""

    global_index: int
    shard_id: int
    local_index: int
    query: PirQuery | None = None  # real-crypto payload; None in sim mode
    key: bytes | None = None  # keyword-PIR lookups route by key, not index
    #: Database epoch the request was admitted under (versioned hot-swap,
    #: ``repro.mutate.serving``); None for unversioned registries.
    epoch: int | None = None
    #: Tracing id minted at the admission door (``repro.obs.trace``);
    #: rides the request through every layer — including the cluster
    #: message protocol into worker processes — so one timeline shows
    #: the whole path.  None when tracing is off.
    trace_id: int | None = None


@dataclass(frozen=True)
class ShardSpec:
    """Static description of one shard."""

    shard_id: int
    start: int
    num_records: int
    placement: DbPlacement
    preprocessed_bytes: int


class RealShardRegistry:
    """N real ``PirServer`` replicas over one logical record set.

    One :class:`PirClient` (and its ring context) is shared across shards:
    the client's evaluation keys are registered with every replica at build
    time — the per-shard setup management a deployment would do per user.
    """

    def __init__(
        self,
        params: PirParams,
        records: list[bytes],
        num_shards: int,
        record_bytes: int | None = None,
        seed: int | None = None,
        config: IveConfig | None = None,
        backend: str | None = None,
    ):
        self.params = params
        self.map = ShardMap(len(records), num_shards)
        self.client = PirClient(params, seed=seed)
        setup = self.client.setup_message()
        memory = (config if config is not None else IveConfig.ive()).memory
        self._records = list(records)
        self._dbs: list[PirDatabase] = []
        self._servers: list[PirServer] = []
        self.specs: list[ShardSpec] = []
        for shard_id in range(num_shards):
            start = self.map.starts[shard_id]
            size = self.map.sizes[shard_id]
            db = PirDatabase.from_records(
                records[start : start + size], params, record_bytes
            )
            pre = db.preprocess(self.client.ring, backend=backend)
            placement, _ = choose_placement(pre.stored_bytes, memory)
            self._dbs.append(db)
            self._servers.append(PirServer(pre, setup, backend=backend))
            self.specs.append(
                ShardSpec(
                    shard_id=shard_id,
                    start=start,
                    num_records=size,
                    placement=placement,
                    preprocessed_bytes=pre.stored_bytes,
                )
            )

    @classmethod
    def random(
        cls,
        params: PirParams,
        num_records: int,
        record_bytes: int,
        num_shards: int,
        seed: int | None = None,
        backend: str | None = None,
    ) -> "RealShardRegistry":
        rng = np.random.default_rng(seed)
        records = [rng.bytes(record_bytes) for _ in range(num_records)]
        return cls(
            params, records, num_shards, record_bytes, seed=seed, backend=backend
        )

    @property
    def num_shards(self) -> int:
        return self.map.num_shards

    @property
    def num_records(self) -> int:
        return self.map.num_records

    def server(self, shard_id: int) -> PirServer:
        return self._servers[self.map.check_shard(shard_id)]

    def shard_db(self, shard_id: int) -> PirDatabase:
        return self._dbs[self.map.check_shard(shard_id)]

    def make_request(self, global_index: int) -> ServeRequest:
        """Route and build the real cryptographic query for a record.

        Raises the typed :class:`~repro.errors.RoutingError` on
        out-of-range or non-integer indices (never a bare
        ``ValueError``/``IndexError``).
        """
        shard_id, local = self.map.route(global_index)
        query = self.client.build_query(local, self._dbs[shard_id].layout)
        return ServeRequest(
            global_index=int(global_index),
            shard_id=shard_id,
            local_index=local,
            query=query,
        )

    def decode(self, request: ServeRequest, response: PirResponse) -> bytes:
        """Decrypt a shard's response back to record bytes."""
        layout = self._dbs[self.map.check_shard(request.shard_id)].layout
        return self.client.decode_response(response, request.local_index, layout)

    def expected(self, global_index: int) -> bytes:
        """Ground-truth record bytes (for verification in tests/examples)."""
        global_index = ShardMap._as_index(global_index, "record index")
        if not 0 <= global_index < self.num_records:
            raise RoutingError(
                f"record {global_index} out of range [0, {self.num_records})"
            )
        return self._records[global_index]


@dataclass
class SimShardRegistry:
    """Geometry-only registry for simulated-clock serving.

    The logical database is ``params.num_db_polys`` records; shards follow
    the :class:`~repro.systems.cluster.IveCluster` record-level split, so
    each shard drops ``log2(num_shards)`` ColTor dimensions and is served by
    one :class:`ScaleUpSystem` whose simulator provides batched latencies.
    """

    params: PirParams
    num_shards: int = 1
    config: IveConfig | None = None
    batchpir: bool = False
    kvpir: bool = False
    # hintpir mode: the window is one plaintext DB @ Q GEMM over the raw
    # database (repro.hintpir) instead of the full Expand/RowSel/ColTor
    # pipeline; Z_p entries of hint_entry_bits bits.
    hintpir: bool = False
    hint_entry_bits: int = 8
    design_batch: int = 64
    # kvpir mode: probes per lookup; None = kvpir.model.DEFAULT_MODEL_CANDIDATES
    candidates_per_lookup: int | None = None
    _service_cache: dict[int, float] = field(default_factory=dict, repr=False)

    def __post_init__(self):
        if self.hintpir and (self.batchpir or self.kvpir):
            raise ParameterError(
                "hintpir mode cannot combine with batchpir/kvpir"
            )
        if not modmath.is_power_of_two(self.num_shards):
            raise ParameterError("shard count must be a power of two")
        levels = modmath.ilog2(self.num_shards)
        if self.params.num_dims < levels:
            raise ParameterError(
                f"cannot split {self.params.num_dims} ColTor dimensions across "
                f"{self.num_shards} shards"
            )
        self.shard_params = self.params.with_db(
            num_dims=self.params.num_dims - levels
        )
        # Identical shards share one latency model.
        self.system = ScaleUpSystem(
            self.shard_params,
            self.config if self.config is not None else IveConfig.ive(),
        )
        self.map = ShardMap(self.params.num_db_polys, self.num_shards)
        self.batch_system = None
        if self.kvpir:
            # Keyword mode is batch mode over the tag-inflated slot table:
            # each simulated "record" stands for a key, and each lookup
            # spends candidates_per_lookup probes inside the batched pass.
            self.batchpir = True
        if self.batchpir:
            # Batch-aware mode: a dispatch window's distinct indices are
            # served by amortized cuckoo-batch passes instead of per-query
            # scans.  Imported lazily — repro.batchpir sits above this layer.
            from repro.batchpir.model import model_bucket_params
            from repro.systems.scale_up import BatchScaleUpSystem

            if self.design_batch < 1:
                raise ParameterError("design batch must be at least 1")
            base = self.shard_params
            design_indices = self.design_batch
            if self.kvpir:
                from repro.kvpir.model import (
                    DEFAULT_MODEL_CANDIDATES,
                    model_kv_slot_params,
                )

                if self.candidates_per_lookup is None:
                    self.candidates_per_lookup = DEFAULT_MODEL_CANDIDATES
                if self.candidates_per_lookup < 1:
                    raise ParameterError(
                        "a lookup must probe at least one candidate"
                    )
                base = model_kv_slot_params(base)
                design_indices = self.design_batch * self.candidates_per_lookup
            cuckoo, bucket_params = model_bucket_params(base, design_indices)
            self.batch_system = BatchScaleUpSystem(
                bucket_params, cuckoo.num_buckets, self.config
            )

    @property
    def num_records(self) -> int:
        return self.map.num_records

    @property
    def placement(self) -> DbPlacement:
        return self.system.placement

    def make_request(self, global_index: int) -> ServeRequest:
        shard_id, local = self.map.route(global_index)
        return ServeRequest(
            global_index=global_index, shard_id=shard_id, local_index=local
        )

    def service_seconds(self, batch: int) -> float:
        """Batched service time of one shard (cached per batch size).

        In batchpir mode a window of ``batch`` queries costs
        ``ceil(batch / design_batch)`` amortized passes over the replicated
        bucket set — the coalesced cost model, not per-query pipelines.
        """
        if batch not in self._service_cache:
            if self.batch_system is not None:
                passes = math.ceil(batch / self.design_batch)
                seconds = passes * self.batch_system.pass_latency().total_s
            elif self.hintpir:
                seconds = self.system.simulator.hintpir_online_latency(
                    batch, self.hint_entry_bits
                ).total_s
            else:
                seconds = self.system.latency(batch).total_s
            self._service_cache[batch] = seconds
        return self._service_cache[batch]

    def waiting_window_s(self) -> float:
        """Paper policy: window = one RowSel DB read of the shard slice.

        The batchpir analog reads every bucket database once (the
        replicated set), which is what one coalesced pass amortizes; the
        hintpir analog is one pass over the *raw* database — the hint
        tier never streams the NTT-expanded form.
        """
        if self.batch_system is not None:
            return (
                self.batch_system.num_buckets
                * self.batch_system.simulator.min_db_read_seconds()
            )
        if self.hintpir:
            return self.system.simulator.min_raw_db_read_seconds()
        return self.system.min_db_read_seconds()
