"""repro.serve — async multi-shard PIR serving runtime (ROADMAP north star).

Turns the functional pipeline into an online service: a shard registry
partitions one logical database across ``PirServer`` replicas, per-shard
dispatchers apply the paper's waiting-window batch policy behind bounded
admission queues, and a worker layer executes batches either with real
cryptography (thread pool) or against the accelerator latency model on a
virtual-time event loop, so million-user load tests run in wall-seconds.
A third backend lives in ``repro.cluster``: real-crypto replicas in
worker *processes* behind a coordinator, for QPS that scales past the GIL.
"""

from repro.serve.dispatcher import (
    AdmissionConfig,
    ServeResult,
    ServeRuntime,
    ShardDispatcher,
)
from repro.serve.loadgen import (
    LoadReport,
    bursty_arrivals,
    diurnal_arrivals,
    poisson_arrivals,
    run_open_loop,
    uniform_indices,
    zipf_indices,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import (
    RealShardRegistry,
    ServeRequest,
    ShardMap,
    SimShardRegistry,
)
from repro.serve.workers import (
    RealCryptoBackend,
    SimulatedBackend,
    VirtualTimeLoop,
    run_in_virtual_time,
)

__all__ = [
    "AdmissionConfig",
    "LoadReport",
    "RealCryptoBackend",
    "RealShardRegistry",
    "ServeMetrics",
    "ServeRequest",
    "ServeResult",
    "ServeRuntime",
    "ShardDispatcher",
    "ShardMap",
    "SimShardRegistry",
    "SimulatedBackend",
    "VirtualTimeLoop",
    "bursty_arrivals",
    "diurnal_arrivals",
    "poisson_arrivals",
    "run_in_virtual_time",
    "run_open_loop",
    "uniform_indices",
    "zipf_indices",
]
