"""Admission-controlled, waiting-window batch dispatch (the serving core).

Each shard owns one :class:`ShardDispatcher`: a bounded queue plus an async
run loop that applies the paper's waiting-window policy
(:class:`~repro.systems.batching.BatchPolicy`) — a batch launches when the
oldest query has waited one window, when ``max_batch`` queries are queued,
or immediately while draining.  Batches execute one at a time per shard
(the replica is a single serially-reused accelerator), so the queue keeps
filling while a batch is in flight, exactly like the discrete-event model
in :mod:`repro.systems.queueing`.

Admission control is load shedding at the door: a submit against a full
queue raises :class:`~repro.errors.QueueFullError` instead of letting the
queue — and every queued client's latency — grow without bound.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass

from repro.errors import (
    ParameterError,
    QueueFullError,
    RoutingError,
    ServeError,
    ShuttingDownError,
)
from repro.obs.events import FlightRecorder
from repro.obs.trace import Tracer
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import ServeRequest, ShardMap
from repro.systems.batching import BatchPolicy

#: Shortest window-countdown sleep.  A residual wait below one nanosecond
#: can be smaller than one ulp of the loop clock, in which case the timer
#: would fire without time having visibly advanced and the countdown loop
#: would spin at a frozen ``oldest_wait`` forever.
_MIN_WAIT_S = 1e-9


@dataclass(frozen=True)
class AdmissionConfig:
    """Bounded-queue admission control for one shard."""

    max_queue_depth: int = 1024

    def __post_init__(self):
        if self.max_queue_depth < 1:
            raise ParameterError("queue depth must be at least 1")


@dataclass
class _Pending:
    request: ServeRequest
    arrival_s: float
    future: asyncio.Future


@dataclass(frozen=True)
class ServeResult:
    """What a served query resolves to."""

    request: ServeRequest
    response: object
    arrival_s: float
    dispatch_s: float
    finish_s: float
    batch_size: int

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.arrival_s

    @property
    def queue_wait_s(self) -> float:
        return self.dispatch_s - self.arrival_s


class ShardDispatcher:
    """Waiting-window batch scheduler for one shard replica."""

    def __init__(
        self,
        shard_id: int,
        backend,
        policy: BatchPolicy,
        admission: AdmissionConfig,
        metrics: ServeMetrics,
        tracer: Tracer | None = None,
        recorder: FlightRecorder | None = None,
    ):
        self.shard_id = shard_id
        self.backend = backend
        self.policy = policy
        self.admission = admission
        self.metrics = metrics
        self.tracer = tracer
        self.recorder = recorder
        self._tid = f"shard-{shard_id}"
        self._queue: deque[_Pending] = deque()
        self._arrived = asyncio.Event()
        self._draining = False
        self._task: asyncio.Task | None = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.create_task(
                self._run(), name=f"shard-{self.shard_id}-dispatcher"
            )

    async def drain(self) -> None:
        """Flush the queue (ignoring the window) and stop the run loop."""
        self._draining = True
        self._arrived.set()
        if self._task is not None:
            await self._task
            self._task = None

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # -- admission ---------------------------------------------------------
    def submit(self, request: ServeRequest) -> asyncio.Future:
        """Enqueue or shed.  Synchronous: admission is decided at the door."""
        loop = asyncio.get_running_loop()
        now = loop.time()
        if self.tracer is not None and request.trace_id is None:
            # The trace id is minted at the admission door — even a shed
            # query leaves a (zero-duration) mark in the timeline.
            request.trace_id = self.tracer.mint()
        if self._draining:
            self.metrics.record_submit(accepted=False, now_s=now)
            self._trace_reject(request, now, "shutting-down")
            raise ShuttingDownError(
                f"shard {self.shard_id} is draining; query rejected"
            )
        if len(self._queue) >= self.admission.max_queue_depth:
            self.metrics.record_submit(accepted=False, now_s=now)
            self._trace_reject(request, now, "queue-full")
            raise QueueFullError(
                f"shard {self.shard_id} queue at capacity "
                f"({self.admission.max_queue_depth}); query shed"
            )
        self.metrics.record_submit(accepted=True, now_s=now)
        pending = _Pending(request=request, arrival_s=now, future=loop.create_future())
        self._queue.append(pending)
        self.metrics.record_queue_depth(len(self._queue))
        self._arrived.set()
        return pending.future

    def _trace_reject(self, request: ServeRequest, now: float, reason: str) -> None:
        if self.tracer is not None:
            self.tracer.record_instant(
                "serve.reject",
                now,
                trace_id=request.trace_id,
                tid=self._tid,
                reason=reason,
            )
        if self.recorder is not None:
            self.recorder.record(
                "admission.reject",
                now,
                trace_ids=(request.trace_id,),
                shard=self.shard_id,
                reason=reason,
                queue_depth=len(self._queue),
            )

    # -- run loop ----------------------------------------------------------
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if not self._queue:
                if self._draining:
                    return
                self._arrived.clear()
                await self._arrived.wait()
                continue
            # Window countdown: wait until the policy fires or drain starts.
            while not self._draining:
                self._arrived.clear()
                oldest_wait = loop.time() - self._queue[0].arrival_s
                if self.policy.should_dispatch(len(self._queue), oldest_wait):
                    break
                remaining = self.policy.waiting_window_s - oldest_wait
                try:
                    # Wakes early if the queue grows (possibly to max_batch).
                    await asyncio.wait_for(
                        self._arrived.wait(), max(remaining, _MIN_WAIT_S)
                    )
                except asyncio.TimeoutError:  # builtin alias only since 3.11
                    pass
            batch = [
                self._queue.popleft()
                for _ in range(min(self.policy.max_batch, len(self._queue)))
            ]
            self.metrics.record_dispatch(self.shard_id, len(batch), len(self._queue))
            if self.recorder is not None:
                self.recorder.record(
                    "batch.dispatch",
                    loop.time(),
                    trace_ids=(batch[0].request.trace_id,),
                    shard=self.shard_id,
                    batch=len(batch),
                    queue_depth=len(self._queue),
                    oldest_wait_s=loop.time() - batch[0].arrival_s,
                )
            await self._serve(batch)

    async def _serve(self, batch: list[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        dispatch_s = loop.time()
        try:
            responses = await self.backend.answer(
                self.shard_id, [p.request for p in batch]
            )
        except Exception as exc:  # noqa: BLE001 — fault isolation per batch
            finish_s = loop.time()
            self.metrics.record_failed(self.shard_id, len(batch), finish_s=finish_s)
            if self.recorder is not None:
                self.recorder.record(
                    "batch.failed",
                    finish_s,
                    trace_ids=tuple(p.request.trace_id for p in batch),
                    shard=self.shard_id,
                    batch=len(batch),
                    error=type(exc).__name__,
                )
            if self.tracer is not None:
                self.tracer.record_span(
                    "serve.batch",
                    dispatch_s,
                    finish_s,
                    trace_id=batch[0].request.trace_id,
                    tid=self._tid,
                    batch=len(batch),
                    error=type(exc).__name__,
                )
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        finish_s = loop.time()
        if self.tracer is not None:
            self.tracer.record_span(
                "serve.batch",
                dispatch_s,
                finish_s,
                trace_id=batch[0].request.trace_id,
                tid=self._tid,
                batch=len(batch),
            )
        for pending, response in zip(batch, responses):
            result = ServeResult(
                request=pending.request,
                response=response,
                arrival_s=pending.arrival_s,
                dispatch_s=dispatch_s,
                finish_s=finish_s,
                batch_size=len(batch),
            )
            self.metrics.record_served(
                self.shard_id, result.latency_s, result.queue_wait_s, finish_s
            )
            if self.tracer is not None:
                self.tracer.record_span(
                    "serve.request",
                    pending.arrival_s,
                    finish_s,
                    trace_id=pending.request.trace_id,
                    tid=self._tid,
                    batch=len(batch),
                )
                self.tracer.record_span(
                    "serve.queue",
                    pending.arrival_s,
                    dispatch_s,
                    trace_id=pending.request.trace_id,
                    tid=self._tid,
                )
            if not pending.future.done():
                pending.future.set_result(result)


class ServeRuntime:
    """The multi-shard serving runtime: registry + backend + dispatchers.

    Usage::

        runtime = ServeRuntime(registry, backend, policy)
        async with runtime:
            result = await runtime.serve_index(123)
    """

    def __init__(
        self,
        registry,
        backend,
        policy: BatchPolicy,
        admission: AdmissionConfig | None = None,
        metrics: ServeMetrics | None = None,
        tracer: Tracer | None = None,
        recorder: FlightRecorder | None = None,
    ):
        self.registry = registry
        self.backend = backend
        self.policy = policy
        self.admission = admission if admission is not None else AdmissionConfig()
        num_shards = registry.map.num_shards
        self.metrics = metrics if metrics is not None else ServeMetrics(num_shards)
        self.tracer = tracer
        self.recorder = recorder
        if recorder is not None:
            # Post-mortems capture the serving state at the fatal event.
            recorder.attach_source("serve_metrics", self.metrics.snapshot)
            recorder.attach_source("live_series", self.metrics.live_series)
        self.dispatchers = [
            ShardDispatcher(
                s, backend, policy, self.admission, self.metrics, tracer, recorder
            )
            for s in range(num_shards)
        ]

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        for dispatcher in self.dispatchers:
            dispatcher.start()

    async def drain(self) -> None:
        """Serve everything queued, then stop accepting and shut down."""
        await asyncio.gather(*(d.drain() for d in self.dispatchers))
        self.backend.close()

    async def __aenter__(self) -> "ServeRuntime":
        self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.drain()

    # -- serving -----------------------------------------------------------
    def submit(self, request: ServeRequest) -> asyncio.Future:
        """Route to the shard dispatcher; raises typed errors when shed."""
        shard_id = ShardMap._as_index(request.shard_id, "shard id")
        if not 0 <= shard_id < len(self.dispatchers):
            raise RoutingError(
                f"request targets shard {shard_id}, runtime has "
                f"{len(self.dispatchers)}"
            )
        return self.dispatchers[shard_id].submit(request)

    async def serve(self, request: ServeRequest) -> ServeResult:
        return await self.submit(request)

    async def serve_index(self, global_index: int) -> ServeResult:
        """Convenience: route, build the query, and await the result."""
        return await self.serve(self.registry.make_request(global_index))

    async def serve_key(self, key: bytes) -> ServeResult:
        """Keyword lookup: route by key against a keyword-PIR registry.

        Requires a registry whose ``make_request`` takes a key (e.g.
        ``repro.kvpir.serving.KvServeRegistry``); the result's response is
        the value bytes, or ``None`` for an absent key — ``registry.decode``
        turns that into the typed ``KeyNotFound``.
        """
        return await self.serve(self.registry.make_request(key))

    async def serve_keys(self, keys) -> list[ServeResult]:
        """Submit a multi-key lookup in one shot and await all results.

        Same windowing contract as :meth:`serve_many`: all requests are
        submitted before any is awaited, so a shard's lookups share a
        waiting window and the keyword backend coalesces their candidate
        slots into amortized batched passes.
        """
        return await self._serve_all(
            [self.registry.make_request(k) for k in keys]
        )

    async def serve_many(self, global_indices) -> list[ServeResult]:
        """Submit a multi-record fetch in one shot and await all results.

        All requests are submitted before any is awaited, so queries for
        the same shard land in the same waiting window whenever the policy
        allows — which is what lets a batch-aware backend (e.g.
        ``repro.batchpir.serving.BatchCryptoBackend``) coalesce the
        window's distinct indices into one amortized batched pass.
        """
        return await self._serve_all(
            [self.registry.make_request(int(g)) for g in global_indices]
        )

    async def _serve_all(self, requests: list[ServeRequest]) -> list[ServeResult]:
        futures: list[asyncio.Future] = []
        try:
            for request in requests:
                futures.append(self.submit(request))
        except ServeError:
            # Don't abandon what was already enqueued — those batches still
            # execute; retrieve them before surfacing the admission failure.
            await asyncio.gather(*futures, return_exceptions=True)
            raise
        results = await asyncio.gather(*futures, return_exceptions=True)
        for result in results:
            if isinstance(result, BaseException):
                raise result
        return list(results)

    @property
    def total_queue_depth(self) -> int:
        return sum(d.queue_depth for d in self.dispatchers)
