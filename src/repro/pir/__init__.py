"""Single-server PIR protocol (OnionPIR-style) built on the HE substrate.

Implements the full server pipeline from Fig. 2 — ExpandQuery, RowSel,
ColTor — plus record packing, database preprocessing, client query
construction/decoding, and the SimplePIR baseline used in Table IV.
"""

from repro.pir.client import ClientSetup, PirClient, PirQuery, PirResponse
from repro.pir.coltor import column_tournament
from repro.pir.database import PirDatabase, PreprocessedDatabase
from repro.pir.expand import expand_query, expand_query_batched, expansion_powers
from repro.pir.layout import RecordLayout, layout_for
from repro.pir.protocol import PirProtocol, RetrievalResult, Transcript
from repro.pir.rowsel import num_rowsel_cols, row_select, row_select_vec
from repro.pir.server import PirServer
from repro.pir.simplepir import (
    SimplePirClient,
    SimplePirParams,
    SimplePirServer,
    db_matrix_shape,
    lwe_public_matrix,
    modular_gemm,
)

__all__ = [
    "ClientSetup",
    "PirClient",
    "PirDatabase",
    "PirProtocol",
    "PirQuery",
    "PirResponse",
    "PirServer",
    "PreprocessedDatabase",
    "RecordLayout",
    "RetrievalResult",
    "SimplePirClient",
    "SimplePirParams",
    "SimplePirServer",
    "Transcript",
    "column_tournament",
    "db_matrix_shape",
    "expand_query",
    "expand_query_batched",
    "expansion_powers",
    "layout_for",
    "lwe_public_matrix",
    "modular_gemm",
    "num_rowsel_cols",
    "row_select",
    "row_select_vec",
]

# The hint tier (repro.hintpir) builds its protocol family on the
# SimplePIR core above; re-exported here so the PIR surface is one
# import.  Deliberately at the end of the module: repro.hintpir imports
# repro.pir.simplepir (the submodule, never this package's attributes),
# so this late import cannot form a cycle.
from repro.hintpir.protocol import (  # noqa: E402
    HintAnswer,
    HintDelta,
    HintEpochDelta,
    HintPirClient,
    HintPirProtocol,
    HintPirServer,
    HintQuery,
    HintTranscript,
)

__all__ += [
    "HintAnswer",
    "HintDelta",
    "HintEpochDelta",
    "HintPirClient",
    "HintPirProtocol",
    "HintPirServer",
    "HintQuery",
    "HintTranscript",
]
