"""End-to-end protocol orchestration and communication accounting.

``PirProtocol`` wires a client and server together over one database and
reports a :class:`Transcript` of communication sizes — the quantities the
paper compares across PIR schemes (query size 2*D*logQ bits for BFV vs
n*D*logQ for Regev, Section II-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.he.backend import ComputeBackend
from repro.params import PirParams
from repro.pir.client import PirClient, PirQuery, PirResponse
from repro.pir.database import PirDatabase
from repro.pir.server import PirServer


@dataclass
class Transcript:
    """Bytes exchanged, split by message type."""

    setup_bytes: int = 0
    query_bytes: int = 0
    response_bytes: int = 0
    queries_served: int = 0

    @property
    def total_online_bytes(self) -> int:
        return self.query_bytes + self.response_bytes

    def per_query_online_bytes(self) -> float:
        if self.queries_served == 0:
            return 0.0
        return self.total_online_bytes / self.queries_served


@dataclass
class RetrievalResult:
    """Returned by :meth:`PirProtocol.retrieve`."""

    record: bytes
    query: PirQuery
    response: PirResponse


class PirProtocol:
    """A client/server pair sharing one ring context (functional harness)."""

    def __init__(
        self,
        params: PirParams,
        db: PirDatabase,
        seed: int | None = None,
        backend: "str | ComputeBackend | None" = None,
    ):
        self.params = params
        self.db = db
        self.client = PirClient(params, seed=seed)
        self.preprocessed = db.preprocess(self.client.ring, backend=backend)
        setup = self.client.setup_message()
        self.server = PirServer(self.preprocessed, setup, backend=backend)
        self.transcript = Transcript(setup_bytes=setup.size_bytes(params))

    def retrieve(self, record_index: int) -> RetrievalResult:
        """Full round trip: build query, answer, decode."""
        query = self.client.build_query(record_index, self.db.layout)
        response = self.server.answer(query)
        record = self.client.decode_response(response, record_index, self.db.layout)
        self.transcript.query_bytes += query.size_bytes(self.params)
        self.transcript.response_bytes += response.size_bytes(self.params)
        self.transcript.queries_served += 1
        return RetrievalResult(record=record, query=query, response=response)

    def retrieve_compressed(
        self, record_index: int, num_moduli: int | None = None
    ) -> bytes:
        """Retrieve with a modulus-switched (compressed) response.

        The server rescales each response ciphertext to a prefix RNS basis
        before transmission, shrinking the response by rns_count/num_moduli
        (the OnionPIR-family response-compression technique).  The default
        basis is the smallest that the Section II-C noise estimate permits.
        """
        from repro.he import noise as noise_mod
        from repro.he.modswitch import ModulusSwitcher, min_moduli_for_noise

        if num_moduli is None:
            bound = noise_mod.estimate(self.params).response_bound()
            num_moduli = min_moduli_for_noise(self.params, bound)
        query = self.client.build_query(record_index, self.db.layout)
        response = self.server.answer(query)
        switcher = ModulusSwitcher(self.client.ring, num_moduli)
        switched = [switcher.switch(ct) for ct in response.plane_cts]
        plain = [
            switcher.decrypt(ct, self.client.secret_key.coeffs) for ct in switched
        ]
        record = self.client.assemble_record(plain, record_index, self.db.layout)
        self.transcript.query_bytes += query.size_bytes(self.params)
        self.transcript.response_bytes += sum(
            ct.size_bytes(self.params) for ct in switched
        )
        self.transcript.queries_served += 1
        return record

    def retrieve_batch(self, record_indices: list[int]) -> list[bytes]:
        """Multi-client-style batch: one expansion per query, shared DB scan."""
        queries = [self.client.build_query(i, self.db.layout) for i in record_indices]
        responses = self.server.answer_batch(queries)
        records = [
            self.client.decode_response(resp, idx, self.db.layout)
            for idx, resp in zip(record_indices, responses)
        ]
        for query, response in zip(queries, responses):
            self.transcript.query_bytes += query.size_bytes(self.params)
            self.transcript.response_bytes += response.size_bytes(self.params)
            self.transcript.queries_served += 1
        return records
