"""ColTor (Fig. 2-(3)): tournament reduction over the subsequent dimensions.

Each round k halves the candidate set using the k-th RGSW selection bit:

    Z = ct_RGSW,k ⊡ (Y - X) + X      (bit = 1 selects Y, bit = 0 selects X)

Rounds consume the column-index bits LSB-first, matching the layout in
``repro.pir.layout`` (col = sum bits_k * 2^k).  The traversal order here is
the breadth-first reference; the ``repro.sched`` package reasons about
BFS/DFS/hierarchical orders for the hardware, which reorder *scheduling*
but never the per-ciphertext operation sequence (Section IV-A), so this
functional implementation is order-equivalent.

:func:`column_tournament` dispatches the batched rounds to a resolved
:class:`~repro.he.backend.ComputeBackend` (each round is one batched
cmux — all of the round's digit decompositions, NTTs, and
external-product contractions stacked); the per-pair
:func:`column_tournament_reference` is the oracle.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.he.backend import ComputeBackend, resolve_backend
from repro.he.batched import BfvCiphertextVec
from repro.he.bfv import BfvCiphertext
from repro.he.gadget import Gadget
from repro.he.rgsw import RgswCiphertext, cmux
from repro.obs.profile import kernel_stage


def column_tournament(
    entries: list[BfvCiphertext],
    selection_bits: list[RgswCiphertext],
    gadget: Gadget,
    backend: str | ComputeBackend | None = None,
) -> BfvCiphertext:
    """Reduce 2^d RowSel outputs to the single response ciphertext.

    Batched path: every tournament round runs as one backend cmux over
    the stacked even/odd halves; results are element-identical to
    :func:`column_tournament_reference` on every backend.
    """
    if not entries:
        raise ParameterError("ColTor needs at least one entry")
    return resolve_backend(backend).coltor(
        BfvCiphertextVec.from_cts(entries), selection_bits, gadget
    )


def column_tournament_reference(
    entries: list[BfvCiphertext],
    selection_bits: list[RgswCiphertext],
    gadget: Gadget,
) -> BfvCiphertext:
    """Per-pair oracle: one scalar cmux per surviving pair per round."""
    count = len(entries)
    if count == 0:
        raise ParameterError("ColTor needs at least one entry")
    if count & (count - 1):
        raise ParameterError(f"ColTor entry count {count} must be a power of two")
    if (1 << len(selection_bits)) != count:
        raise ParameterError(
            f"{count} entries need {count.bit_length() - 1} selection bits, "
            f"got {len(selection_bits)}"
        )
    current = list(entries)
    nbytes = sum(
        ct.a.residues.nbytes + ct.b.residues.nbytes for ct in entries
    )
    with kernel_stage("coltor", nbytes):
        for rgsw_bit in selection_bits:
            current = [
                cmux(rgsw_bit, current[2 * i], current[2 * i + 1], gadget)
                for i in range(len(current) // 2)
            ]
        return current[0]
