"""ColTor (Fig. 2-(3)): tournament reduction over the subsequent dimensions.

Each round k halves the candidate set using the k-th RGSW selection bit:

    Z = ct_RGSW,k ⊡ (Y - X) + X      (bit = 1 selects Y, bit = 0 selects X)

Rounds consume the column-index bits LSB-first, matching the layout in
``repro.pir.layout`` (col = sum bits_k * 2^k).  The traversal order here is
the breadth-first reference; the ``repro.sched`` package reasons about
BFS/DFS/hierarchical orders for the hardware, which reorder *scheduling*
but never the per-ciphertext operation sequence (Section IV-A), so this
functional implementation is order-equivalent.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.he.batched import BfvCiphertextVec, batched_cmux
from repro.he.bfv import BfvCiphertext
from repro.he.gadget import Gadget
from repro.he.rgsw import RgswCiphertext, cmux
from repro.obs.profile import kernel_stage


def column_tournament(
    entries: list[BfvCiphertext],
    selection_bits: list[RgswCiphertext],
    gadget: Gadget,
    use_fast: bool = False,
) -> BfvCiphertext:
    """Reduce 2^d RowSel outputs to the single response ciphertext.

    With ``use_fast`` every tournament round runs as one batched cmux —
    all of the round's digit decompositions, NTTs, and external-product
    contractions stacked — instead of one cmux per pair; results are
    element-identical (the per-pair path is the oracle).
    """
    count = len(entries)
    if count == 0:
        raise ParameterError("ColTor needs at least one entry")
    if count & (count - 1):
        raise ParameterError(f"ColTor entry count {count} must be a power of two")
    if (1 << len(selection_bits)) != count:
        raise ParameterError(
            f"{count} entries need {count.bit_length() - 1} selection bits, "
            f"got {len(selection_bits)}"
        )
    current = list(entries)
    nbytes = sum(
        ct.a.residues.nbytes + ct.b.residues.nbytes for ct in entries
    )
    with kernel_stage("coltor", nbytes):
        for rgsw_bit in selection_bits:
            if use_fast:
                zeros = BfvCiphertextVec.from_cts(current[0::2])
                ones = BfvCiphertextVec.from_cts(current[1::2])
                current = batched_cmux(rgsw_bit, zeros, ones, gadget).cts()
            else:
                current = [
                    cmux(rgsw_bit, current[2 * i], current[2 * i + 1], gadget)
                    for i in range(len(current) // 2)
                ]
        return current[0]
