"""SimplePIR [49]: Regev-encryption PIR with a client-side hint (Table IV).

The database is a sqrt(D) x sqrt(D) matrix over Z_P.  The client downloads
``hint = DB @ A`` once offline; online it sends one Regev vector selecting
a column, and the server answers with a single matrix-vector product —
"one server for the price of two".  This functional implementation backs
the Table IV comparison and the Section VI-D claim that IVE's modular GEMM
path covers SimplePIR's entire server computation.

All server-side products are taken mod q through the resolved
:class:`~repro.he.backend.ComputeBackend` (``planned`` runs them as
chunked BLAS dgemms with Barrett tails); :func:`modular_gemm` — re-
exported from ``repro.he.backend`` — is the exact chunked-int64 form the
client keeps using, and the oracle every backend matches byte for byte.
The naive ``(a @ b) % q`` is only accidentally correct when q is a power
of two (int64 wraparound is congruent mod 2^k) and silently wrong
otherwise, which is why every product routes through one of these.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import LayoutError, ParameterError
from repro.he.backend import ComputeBackend, modular_gemm, resolve_backend

__all__ = [
    "SimplePirParams",
    "SimplePirServer",
    "SimplePirClient",
    "modular_gemm",
    "lwe_public_matrix",
    "db_matrix_shape",
]


@dataclass(frozen=True)
class SimplePirParams:
    """LWE parameters: Z_q ciphertexts, Z_p plaintext entries."""

    lwe_dim: int = 512  # n: secret dimension (paper uses 2^10)
    q_log2: int = 28  # ciphertext modulus (power of two, fits int64 math)
    p_log2: int = 8  # plaintext modulus of DB entries
    error_std: float = 3.2

    @property
    def q(self) -> int:
        return 1 << self.q_log2

    @property
    def p(self) -> int:
        return 1 << self.p_log2

    @property
    def delta(self) -> int:
        return self.q // self.p

    def __post_init__(self):
        # Each product term of a p-size by q-size value must leave room for
        # at least one accumulation step (modular_gemm chunks the rest).
        if self.q_log2 + self.p_log2 >= 60:
            raise ParameterError("q*p too large for int64 accumulation")
        if self.p_log2 >= self.q_log2:
            raise ParameterError(
                "p must be smaller than q (delta = q/p scales the payload)"
            )
        if self.lwe_dim < 1 or self.q_log2 < 1 or self.p_log2 < 1:
            raise ParameterError("lwe_dim, q_log2, p_log2 must be positive")


class SimplePirServer:
    """Holds the DB matrix and the public LWE matrix A."""

    def __init__(
        self,
        db_matrix: np.ndarray,
        params: SimplePirParams,
        seed: int = 0,
        backend: str | ComputeBackend | None = None,
    ):
        db_matrix = np.asarray(db_matrix, dtype=np.int64)
        if db_matrix.ndim != 2:
            raise LayoutError("SimplePIR database must be a 2-D matrix")
        if db_matrix.max(initial=0) >= params.p:
            raise LayoutError(f"database entries must be < p = {params.p}")
        if db_matrix.min(initial=0) < 0:
            raise LayoutError("database entries must be non-negative")
        self.db = db_matrix
        self.params = params
        self.seed = seed
        self.backend = resolve_backend(backend)
        self.a_matrix = lwe_public_matrix(
            db_matrix.shape[1], params.lwe_dim, params.q, seed
        )

    def hint(self) -> np.ndarray:
        """Offline download: DB @ A mod q (rows x lwe_dim)."""
        return self.backend.modular_gemm(self.db, self.a_matrix, self.params.q)

    def answer(self, query_vector: np.ndarray) -> np.ndarray:
        """Online answer: DB @ query mod q (one pass over the whole DB)."""
        query_vector = np.asarray(query_vector, dtype=np.int64)
        if query_vector.shape != (self.db.shape[1],):
            raise LayoutError(
                f"query must have {self.db.shape[1]} entries, got {query_vector.shape}"
            )
        return self.backend.modular_gemm(self.db, query_vector, self.params.q)

    def answer_batch(self, query_matrix: np.ndarray) -> np.ndarray:
        """Answer a stack of queries with one DB @ Q GEMM.

        ``query_matrix`` is (cols, batch) — one query vector per column —
        and the result is (rows, batch), column i answering query i.  One
        GEMM amortizes the single pass over the database across the whole
        batch; chunked accumulation makes the result byte-identical to
        answering each query alone.
        """
        query_matrix = np.asarray(query_matrix, dtype=np.int64)
        if query_matrix.ndim != 2 or query_matrix.shape[0] != self.db.shape[1]:
            raise LayoutError(
                f"query matrix must be ({self.db.shape[1]}, batch), "
                f"got {query_matrix.shape}"
            )
        return self.backend.modular_gemm(self.db, query_matrix, self.params.q)


def lwe_public_matrix(cols: int, lwe_dim: int, q: int, seed: int) -> np.ndarray:
    """The public LWE matrix A, derived deterministically from ``seed``.

    Client and server expand the same seed instead of shipping the
    (cols x lwe_dim) matrix: the transcript carries 8 bytes, not ~n*N*4.
    """
    rng = np.random.default_rng(seed)
    return rng.integers(0, q, size=(cols, lwe_dim), dtype=np.int64)


class SimplePirClient:
    """Builds Regev queries and recovers entries using the offline hint."""

    def __init__(self, server: SimplePirServer, seed: int = 1):
        self.params = server.params
        self.a_matrix = server.a_matrix
        self.hint = server.hint()
        self.rng = np.random.default_rng(seed)
        self.num_rows, self.num_cols = server.db.shape

    def build_query(self, col: int) -> tuple[np.ndarray, np.ndarray]:
        """(query vector, secret) for retrieving column ``col``."""
        if not 0 <= col < self.num_cols:
            raise LayoutError(f"column {col} out of range")
        params = self.params
        secret = self.rng.integers(0, params.q, size=params.lwe_dim, dtype=np.int64)
        error = np.rint(
            self.rng.normal(0.0, params.error_std, size=self.num_cols)
        ).astype(np.int64)
        one_hot = np.zeros(self.num_cols, dtype=np.int64)
        one_hot[col] = params.delta
        query = (
            modular_gemm(self.a_matrix, secret, params.q) + error + one_hot
        ) % params.q
        return query, secret

    def recover(self, answer: np.ndarray, secret: np.ndarray, row: int) -> int:
        """Decode DB[row, col] from the server's answer."""
        params = self.params
        noisy = (answer - modular_gemm(self.hint, secret, params.q)) % params.q
        value = int((int(noisy[row]) + params.delta // 2) // params.delta) % params.p
        return value


def db_matrix_shape(num_records: int) -> tuple[int, int]:
    """Near-square factorization used to lay records out as a matrix."""
    rows = int(math.isqrt(num_records))
    while num_records % rows:
        rows -= 1
    return rows, num_records // rows
