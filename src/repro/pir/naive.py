"""Naive one-dimensional PIR (Section II-A): one ciphertext per record.

The client sends D BFV ciphertexts encrypting the one-hot representation
of its index; the server computes Eq. 1 directly:

    sum_i DB[i] * ct[i]  ->  Enc(DB[i*])

This is the construction every HE-based PIR scheme starts from, and the
reason ExpandQuery exists: the naive query costs ``2 * D * logQ`` bits of
upload, whereas the packed query is a single ciphertext (the paper's
communication argument in Section II-A).  Implemented to quantify that
trade-off; use :class:`repro.pir.protocol.PirProtocol` for anything real.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import LayoutError
from repro.he.bfv import BfvCiphertext, BfvContext, SecretKey
from repro.he.poly import RingContext
from repro.he.sampling import Sampler
from repro.params import PirParams
from repro.pir.database import PirDatabase


@dataclass
class NaiveQuery:
    """D ciphertexts, exactly one of which encrypts 1."""

    cts: list[BfvCiphertext]

    def size_bytes(self, params: PirParams) -> int:
        return len(self.cts) * params.ct_bytes


class NaiveOneHotPir:
    """Client+server pair for the Section II-A construction (single plane)."""

    def __init__(self, params: PirParams, db: PirDatabase, seed: int | None = None):
        if db.layout.plane_count != 1:
            raise LayoutError("naive PIR demo supports single-plane databases")
        self.params = params
        self.db = db
        self.ring = RingContext(params)
        self.sampler = Sampler(self.ring, seed=seed)
        self.bfv = BfvContext(self.ring, self.sampler)
        self.secret_key = SecretKey.generate(self.ring, self.sampler)
        self.preprocessed = db.preprocess(self.ring)

    # -- client ------------------------------------------------------------
    def build_query(self, record_index: int) -> NaiveQuery:
        target_poly = self.db.layout.poly_index(record_index)
        cts = []
        for i in range(self.params.num_db_polys):
            coeffs = np.zeros(self.params.n, dtype=np.int64)
            coeffs[0] = 1 if i == target_poly else 0
            cts.append(self.bfv.encrypt(coeffs, self.secret_key))
        return NaiveQuery(cts=cts)

    # -- server -------------------------------------------------------------
    def answer(self, query: NaiveQuery) -> BfvCiphertext:
        """Eq. 1: one plaintext-ciphertext MAC per database polynomial."""
        if len(query.cts) != self.params.num_db_polys:
            raise LayoutError(
                f"naive query needs {self.params.num_db_polys} ciphertexts, "
                f"got {len(query.cts)}"
            )
        polys = self.preprocessed.planes[0]
        acc = query.cts[0].plain_mul(polys[0])
        for ct, pt in zip(query.cts[1:], polys[1:]):
            acc = acc + ct.plain_mul(pt)
        return acc

    # -- decode -------------------------------------------------------------
    def retrieve(self, record_index: int) -> bytes:
        response = self.answer(self.build_query(record_index))
        coeffs = self.bfv.decrypt(response, self.secret_key)
        layout = self.db.layout
        offset = layout.slot_offset_bytes(record_index)
        data = layout.unpack_poly(coeffs, offset + layout.record_bytes)
        return data[offset : offset + layout.record_bytes]


def query_size_ratio(params: PirParams) -> float:
    """Upload blow-up of naive vs packed queries (Section II-A).

    Naive: D ciphertexts.  Packed: 1 ciphertext + d RGSW selection bits.
    """
    naive = params.num_db_polys * params.ct_bytes
    packed = params.ct_bytes + params.num_dims * params.rgsw_bytes
    return naive / packed
