"""ExpandQuery (Section II-A, Fig. 2-(1)): one query ct -> D0 one-hot cts.

The binary-tree expansion splits the encrypted polynomial into even/odd
halves at each level using Subs with r = N/2^a + 1:

    even = ct + Subs(ct, r)
    odd  = (ct - Subs(ct, r)) * X^(-2^a)

After log2(D0) levels, output j encrypts ``D0 * c_j`` where ``c_j`` is the
j-th query coefficient; the client compensates for the D0 factor (inverse
scaling with odd P, payload headroom with power-of-two P).
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.he.backend import ComputeBackend, resolve_backend
from repro.he.batched import BfvCiphertextVec
from repro.he.bfv import BfvCiphertext
from repro.he.gadget import Gadget
from repro.he.subs import SubsKey, substitute


def expansion_powers(n: int, levels: int) -> list[int]:
    """Substitution powers r used at each tree level: N+1, N/2+1, ..."""
    if (1 << levels) > n:
        raise ParameterError(f"cannot expand {levels} levels in a degree-{n} ring")
    return [n // (1 << a) + 1 for a in range(levels)]


def expand_query(
    ct: BfvCiphertext,
    evks: dict[int, SubsKey],
    levels: int,
    gadget: Gadget,
) -> list[BfvCiphertext]:
    """Expand one packed query ciphertext into 2^levels coefficient cts."""
    n = ct.a.ctx.n
    cts = [ct]
    for a, r in enumerate(expansion_powers(n, levels)):
        if r not in evks:
            raise ParameterError(f"missing evk for substitution power r={r}")
        evk = evks[r]
        step = 1 << a
        expanded: list[BfvCiphertext] = [None] * (2 * len(cts))  # type: ignore[list-item]
        for j, current in enumerate(cts):
            swapped = substitute(current, evk, gadget)
            expanded[j] = current + swapped
            expanded[j + step] = (current - swapped).monomial_mul(-step)
        cts = expanded
    return cts


def expand_query_batched(
    ct: BfvCiphertext,
    evks: dict[int, SubsKey],
    levels: int,
    gadget: Gadget,
    backend: str | ComputeBackend | None = None,
) -> BfvCiphertextVec:
    """Batched tree expansion: every level is a handful of stacked kernels.

    Element-identical to :func:`expand_query` on every backend: at level
    ``a`` the live set has exactly ``step = 2^a`` ciphertexts, so the
    reference's interleave ``expanded[j] / expanded[j + step]`` is a
    plain concatenation of the even and odd halves — which is how the
    whole level becomes one batched Subs, one batched add/sub pair, and
    one batched monomial multiply (see
    :meth:`repro.he.backend.ComputeBackend.expand`).
    """
    return resolve_backend(backend).expand(ct, evks, levels, gadget)
