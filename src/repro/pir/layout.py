"""Record packing and database geometry (Section II-B "Preprocessing DB").

A record is a byte string.  Each plaintext polynomial carries
``N * payload_bits_per_coeff`` bits of record data; records smaller than a
polynomial are packed side by side, records larger than a polynomial are
striped across ``plane_count`` parallel databases ("planes") that share one
query (the selection vector is identical for every plane, so ExpandQuery
runs once per query regardless of record size).

The logical polynomial index ``p`` maps into the multi-dimensional DB as
``row = p % D0`` (initial dimension, resolved by RowSel) and
``col = p // D0`` (subsequent dimensions, resolved bit-by-bit by ColTor).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import LayoutError
from repro.params import PirParams


@dataclass(frozen=True)
class RecordLayout:
    """Mapping between user records and database polynomials."""

    params: PirParams
    record_bytes: int
    num_records: int

    def __post_init__(self):
        if self.record_bytes < 1:
            raise LayoutError("record size must be at least one byte")
        if self.num_records < 1:
            raise LayoutError("database must contain at least one record")
        if self.coeff_bytes < 1:
            raise LayoutError(
                f"payload of {self.params.payload_bits_per_coeff} bits/coeff "
                "cannot carry even one byte"
            )
        if self.polys_needed > self.params.num_db_polys:
            raise LayoutError(
                f"{self.num_records} records of {self.record_bytes} B need "
                f"{self.polys_needed} polynomials but the geometry has only "
                f"{self.params.num_db_polys}"
            )

    # -- derived geometry ------------------------------------------------
    @property
    def coeff_bytes(self) -> int:
        """Record bytes carried per coefficient (byte-granular packing)."""
        return self.params.payload_bits_per_coeff // 8

    @property
    def poly_capacity_bytes(self) -> int:
        return self.params.n * self.coeff_bytes

    @property
    def plane_count(self) -> int:
        """Parallel databases a record is striped across (1 if it fits)."""
        return max(1, math.ceil(self.record_bytes / self.poly_capacity_bytes))

    @property
    def records_per_poly(self) -> int:
        if self.plane_count > 1:
            return 1
        return max(1, self.poly_capacity_bytes // self.record_bytes)

    @property
    def polys_needed(self) -> int:
        return math.ceil(self.num_records / self.records_per_poly)

    @property
    def bytes_per_plane_poly(self) -> int:
        """Bytes of one record stored in one plane's polynomial."""
        if self.plane_count == 1:
            return self.record_bytes
        return math.ceil(self.record_bytes / self.plane_count)

    # -- index mapping -----------------------------------------------------
    def poly_index(self, record_index: int) -> int:
        self._check_index(record_index)
        return record_index // self.records_per_poly

    def slot_offset_bytes(self, record_index: int) -> int:
        """Byte offset of a record inside its polynomial (single plane)."""
        self._check_index(record_index)
        return (record_index % self.records_per_poly) * self.record_bytes

    def _check_index(self, record_index: int) -> None:
        if not 0 <= record_index < self.num_records:
            raise LayoutError(
                f"record index {record_index} out of range [0, {self.num_records})"
            )

    # -- byte <-> coefficient packing ---------------------------------------
    def pack_poly(self, data: bytes) -> np.ndarray:
        """Bytes -> coefficient vector (mod P), little-endian per coefficient."""
        return self.pack_polys([data])[0]

    def pack_polys(self, blobs: list[bytes]) -> np.ndarray:
        """Vectorized packing of many polynomials' worth of bytes at once.

        Returns a ``(len(blobs), N)`` int64 coefficient matrix.  The whole
        batch is one ``np.frombuffer`` + reshape + little-endian recombine
        over a zero-padded buffer — no per-coefficient Python loop — which
        is what makes both bulk construction and delta re-packing
        (``repro.mutate``) cheap.  Coefficients wider than 7 bytes could
        overflow the int64 recombine, so they take a scalar fallback; no
        supported parameter set gets near that (payload bits < 63).
        """
        cb = self.coeff_bytes
        cap = self.poly_capacity_bytes
        for blob in blobs:
            if len(blob) > cap:
                raise LayoutError(
                    f"{len(blob)} bytes exceed polynomial capacity {cap}"
                )
        if not blobs:
            return np.zeros((0, self.params.n), dtype=np.int64)
        if cb > 7:  # 255 << 56 overflows int64; take the loop path
            return np.stack([self._pack_poly_scalar(b) for b in blobs])
        buf = b"".join(blob + b"\0" * (cap - len(blob)) for blob in blobs)
        raw = np.frombuffer(buf, dtype=np.uint8).reshape(
            len(blobs), self.params.n, cb
        )
        shifts = np.arange(cb, dtype=np.int64) * 8
        return (raw.astype(np.int64) << shifts).sum(axis=2, dtype=np.int64)

    def _pack_poly_scalar(self, data: bytes) -> np.ndarray:
        """Reference per-coefficient loop (kept as the wide-coeff fallback)."""
        cb = self.coeff_bytes
        padded = data + b"\0" * (self.poly_capacity_bytes - len(data))
        coeffs = np.zeros(self.params.n, dtype=np.int64)
        for i in range(self.params.n):
            coeffs[i] = int.from_bytes(padded[i * cb : (i + 1) * cb], "little")
        return coeffs

    def unpack_poly(self, coeffs: np.ndarray, nbytes: int) -> bytes:
        """Coefficient vector -> first ``nbytes`` bytes of record data."""
        cb = self.coeff_bytes
        out = bytearray()
        for c in coeffs[: math.ceil(nbytes / cb)]:
            out.extend(int(c).to_bytes(cb, "little"))
        return bytes(out[:nbytes])

    def record_to_plane_chunks(self, record: bytes) -> list[bytes]:
        """Split a record into the per-plane byte chunks it is striped into."""
        if len(record) != self.record_bytes:
            raise LayoutError(
                f"record has {len(record)} bytes, layout expects {self.record_bytes}"
            )
        if self.plane_count == 1:
            return [record]
        size = self.bytes_per_plane_poly
        return [record[i * size : (i + 1) * size] for i in range(self.plane_count)]

    # -- multi-dimensional decomposition -------------------------------------
    def dimension_indices(self, record_index: int) -> tuple[int, list[int]]:
        """(initial-dimension index, ColTor selection bits LSB-first)."""
        poly = self.poly_index(record_index)
        row = poly % self.params.d0
        col = poly // self.params.d0
        bits = [(col >> k) & 1 for k in range(self.params.num_dims)]
        return row, bits


def layout_for(params: PirParams, record_bytes: int, num_records: int) -> RecordLayout:
    """Convenience constructor matching the paper's usage."""
    return RecordLayout(params=params, record_bytes=record_bytes, num_records=num_records)
