"""PIR database: raw records, plaintext polynomials, preprocessed NTT form.

``PirDatabase`` holds the packed plaintext coefficients (mod P).
``preprocess`` applies CRT + NTT ahead of time (Section II-B), trading
logQ/logP more storage for >3.9x faster RowSel — the preprocessed form is
what the server actually multiplies against during Eq. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import LayoutError
from repro.he.backend import ComputeBackend, resolve_backend
from repro.he.batched import RnsPolyVec
from repro.he.poly import Domain, RingContext, RnsPoly
from repro.params import PirParams
from repro.pir.layout import RecordLayout


class PirDatabase:
    """Plaintext database, organized as (plane, poly, coefficient)."""

    def __init__(self, layout: RecordLayout, records: list[bytes]):
        if len(records) != layout.num_records:
            raise LayoutError(
                f"layout expects {layout.num_records} records, got {len(records)}"
            )
        self.layout = layout
        self.params: PirParams = layout.params
        self._records = list(records)
        self.planes = self._pack(records)

    # -- construction -----------------------------------------------------
    @classmethod
    def from_records(
        cls, records: list[bytes], params: PirParams, record_bytes: int | None = None
    ) -> "PirDatabase":
        if not records:
            raise LayoutError("cannot build an empty database")
        size = record_bytes if record_bytes is not None else len(records[0])
        for i, rec in enumerate(records):
            if len(rec) != size:
                raise LayoutError(f"record {i} has {len(rec)} bytes, expected {size}")
        layout = RecordLayout(params=params, record_bytes=size, num_records=len(records))
        return cls(layout, records)

    @classmethod
    def random(
        cls,
        params: PirParams,
        num_records: int,
        record_bytes: int,
        seed: int | None = None,
    ) -> "PirDatabase":
        rng = np.random.default_rng(seed)
        records = [rng.bytes(record_bytes) for _ in range(num_records)]
        return cls.from_records(records, params, record_bytes)

    @classmethod
    def from_parts(
        cls, layout: RecordLayout, records: list[bytes], planes: np.ndarray
    ) -> "PirDatabase":
        """Assemble a database from already-packed planes (no re-packing).

        Trusted constructor for delta application (``repro.mutate``): the
        caller guarantees ``planes`` matches ``records`` under ``layout``,
        which is what lets an epoch snapshot share every clean polynomial
        with its predecessor instead of re-packing the whole database.
        """
        db = cls.__new__(cls)
        db.layout = layout
        db.params = layout.params
        db._records = list(records)
        db.planes = planes
        return db

    def _pack(self, records: list[bytes]) -> np.ndarray:
        lay = self.layout
        planes = np.zeros(
            (lay.plane_count, self.params.num_db_polys, self.params.n), dtype=np.int64
        )
        if lay.plane_count == 1:
            blobs = [
                b"".join(records[p * lay.records_per_poly : (p + 1) * lay.records_per_poly])
                for p in range(lay.polys_needed)
            ]
            planes[0, : lay.polys_needed] = lay.pack_polys(blobs)
        else:
            # Striped records: one record per polynomial on every plane.
            size = lay.bytes_per_plane_poly
            for plane in range(lay.plane_count):
                blobs = [rec[plane * size : (plane + 1) * size] for rec in records]
                planes[plane, : len(records)] = lay.pack_polys(blobs)
        return planes

    def poly_blob(self, plane: int, poly: int) -> bytes:
        """Current byte content of one ``(plane, poly)`` cell.

        The inverse view ``_pack`` consumes: the concatenated records (or
        the record's plane stripe) that cell packs.  Delta application
        re-packs exactly these blobs for dirty cells only.
        """
        lay = self.layout
        if lay.plane_count == 1:
            start = poly * lay.records_per_poly
            return b"".join(self._records[start : start + lay.records_per_poly])
        size = lay.bytes_per_plane_poly
        return self._records[poly][plane * size : (plane + 1) * size]

    # -- access -------------------------------------------------------------
    def record(self, index: int) -> bytes:
        """Ground-truth record bytes (for verification in tests/examples)."""
        self.layout._check_index(index)
        return self._records[index]

    @property
    def num_records(self) -> int:
        return self.layout.num_records

    @property
    def raw_bytes(self) -> int:
        return self.layout.num_records * self.layout.record_bytes

    def preprocess(
        self,
        ring: RingContext,
        backend: "str | ComputeBackend | None" = None,
    ) -> "PreprocessedDatabase":
        """CRT + NTT every polynomial (Section II-B preprocessing).

        One batched CRT + stacked NTT call per plane, routed through the
        resolved compute backend; the per-poly ``RnsPoly`` entries are
        views into the plane's residue tensor, which is seeded straight
        into the RowSel GEMM cache.
        """
        resolved = resolve_backend(backend)
        planes: list[list[RnsPoly]] = []
        tensors: dict[int, np.ndarray] = {}
        for index, plane in enumerate(self.planes):
            coeff = RnsPolyVec.from_small_coeffs(ring, plane, domain=Domain.COEFF)
            vec = resolved.vec_to_ntt(coeff)
            planes.append(vec.polys())
            tensors[index] = vec.residues
        pre = PreprocessedDatabase(self.layout, ring, planes)
        pre._tensors = tensors
        return pre


@dataclass
class PreprocessedDatabase:
    """NTT/RNS-domain database the server computes RowSel against."""

    layout: RecordLayout
    ring: RingContext
    planes: list[list[RnsPoly]]
    #: Per-plane (num_polys, rns_count, n) residue tensors for the batched
    #: RowSel GEMM, built lazily (and seeded by ``preprocess``).
    _tensors: dict[int, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def plane_count(self) -> int:
        return len(self.planes)

    @property
    def num_polys(self) -> int:
        return len(self.planes[0])

    @property
    def stored_bytes(self) -> int:
        """Preprocessed storage footprint (logQ/logP blowup, Section II-B)."""
        return self.plane_count * self.num_polys * self.layout.params.poly_bytes

    def poly(self, plane: int, row: int, col: int) -> RnsPoly:
        """Polynomial at initial-dimension ``row`` and ColTor column ``col``."""
        return self.planes[plane][col * self.layout.params.d0 + row]

    def plane_tensor(self, plane: int) -> np.ndarray:
        """Stacked residues of one plane, shape (num_polys, rns_count, n).

        The contiguous tensor the batched RowSel GEMM contracts against;
        stacked once per plane and cached.  Mutators must go through
        :meth:`set_poly` so the cache never diverges from ``planes``.
        """
        if plane not in self._tensors:
            self._tensors[plane] = np.stack(
                [p.residues for p in self.planes[plane]]
            )
        return self._tensors[plane]

    def set_poly(self, plane: int, index: int, poly: RnsPoly) -> None:
        """Replace one ``(plane, poly)`` cell, keeping the GEMM cache coherent."""
        self.planes[plane][index] = poly
        if plane in self._tensors:
            self._tensors[plane][index] = poly.residues
