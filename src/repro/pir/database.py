"""PIR database: raw records, plaintext polynomials, preprocessed NTT form.

``PirDatabase`` holds the packed plaintext coefficients (mod P).
``preprocess`` applies CRT + NTT ahead of time (Section II-B), trading
logQ/logP more storage for >3.9x faster RowSel — the preprocessed form is
what the server actually multiplies against during Eq. 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import LayoutError
from repro.he.poly import Domain, RingContext, RnsPoly
from repro.params import PirParams
from repro.pir.layout import RecordLayout


class PirDatabase:
    """Plaintext database, organized as (plane, poly, coefficient)."""

    def __init__(self, layout: RecordLayout, records: list[bytes]):
        if len(records) != layout.num_records:
            raise LayoutError(
                f"layout expects {layout.num_records} records, got {len(records)}"
            )
        self.layout = layout
        self.params: PirParams = layout.params
        self._records = list(records)
        self.planes = self._pack(records)

    # -- construction -----------------------------------------------------
    @classmethod
    def from_records(
        cls, records: list[bytes], params: PirParams, record_bytes: int | None = None
    ) -> "PirDatabase":
        if not records:
            raise LayoutError("cannot build an empty database")
        size = record_bytes if record_bytes is not None else len(records[0])
        for i, rec in enumerate(records):
            if len(rec) != size:
                raise LayoutError(f"record {i} has {len(rec)} bytes, expected {size}")
        layout = RecordLayout(params=params, record_bytes=size, num_records=len(records))
        return cls(layout, records)

    @classmethod
    def random(
        cls,
        params: PirParams,
        num_records: int,
        record_bytes: int,
        seed: int | None = None,
    ) -> "PirDatabase":
        rng = np.random.default_rng(seed)
        records = [rng.bytes(record_bytes) for _ in range(num_records)]
        return cls.from_records(records, params, record_bytes)

    def _pack(self, records: list[bytes]) -> np.ndarray:
        lay = self.layout
        planes = np.zeros(
            (lay.plane_count, self.params.num_db_polys, self.params.n), dtype=np.int64
        )
        if lay.plane_count == 1:
            for poly in range(lay.polys_needed):
                start = poly * lay.records_per_poly
                chunk = b"".join(records[start : start + lay.records_per_poly])
                planes[0, poly] = lay.pack_poly(chunk)
        else:
            for idx, record in enumerate(records):
                poly = lay.poly_index(idx)
                for plane, chunk in enumerate(lay.record_to_plane_chunks(record)):
                    planes[plane, poly] = lay.pack_poly(chunk)
        return planes

    # -- access -------------------------------------------------------------
    def record(self, index: int) -> bytes:
        """Ground-truth record bytes (for verification in tests/examples)."""
        self.layout._check_index(index)
        return self._records[index]

    @property
    def num_records(self) -> int:
        return self.layout.num_records

    @property
    def raw_bytes(self) -> int:
        return self.layout.num_records * self.layout.record_bytes

    def preprocess(self, ring: RingContext) -> "PreprocessedDatabase":
        """CRT + NTT every polynomial (Section II-B preprocessing)."""
        planes: list[list[RnsPoly]] = []
        for plane in self.planes:
            planes.append(
                [ring.from_small_coeffs(coeffs, domain=Domain.NTT) for coeffs in plane]
            )
        return PreprocessedDatabase(self.layout, ring, planes)


@dataclass
class PreprocessedDatabase:
    """NTT/RNS-domain database the server computes RowSel against."""

    layout: RecordLayout
    ring: RingContext
    planes: list[list[RnsPoly]]

    @property
    def plane_count(self) -> int:
        return len(self.planes)

    @property
    def num_polys(self) -> int:
        return len(self.planes[0])

    @property
    def stored_bytes(self) -> int:
        """Preprocessed storage footprint (logQ/logP blowup, Section II-B)."""
        return self.plane_count * self.num_polys * self.layout.params.poly_bytes

    def poly(self, plane: int, row: int, col: int) -> RnsPoly:
        """Polynomial at initial-dimension ``row`` and ColTor column ``col``."""
        return self.planes[plane][col * self.layout.params.d0 + row]
