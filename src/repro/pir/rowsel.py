"""RowSel (Fig. 2-(2)): first-dimension selection via plaintext-ct GEMM.

For every ColTor column ``m`` the server accumulates

    ct_out[m] = sum_{i < D0} DB[i][m] * ct_expanded[i]

which is Eq. 1 restricted to the initial dimension.  With RNS + NTT this
is exactly the 4N-parallel modular GEMM the accelerator's sysNTTUs run in
GEMM mode (Section III-A / Fig. 5).

Two implementations share the geometry checks: :func:`row_select` is the
per-poly reference (one ``plain_mul`` per ``(row, col)`` pair — the
correctness oracle), and :func:`row_select_vec` is the batched hot path —
one lazy-reduction tensor contraction per plane over the database's
stacked residue tensor (:meth:`PreprocessedDatabase.plane_tensor`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.he.backend import ComputeBackend, resolve_backend
from repro.he.batched import BfvCiphertextVec
from repro.he.bfv import BfvCiphertext
from repro.pir.database import PreprocessedDatabase


def num_rowsel_cols(db: PreprocessedDatabase) -> int:
    """Number of ColTor columns; rejects non-divisible geometry.

    A database whose polynomial count is not a multiple of ``D0`` would
    silently drop the trailing ``num_polys % d0`` polynomials from every
    RowSel pass — records in them could never be retrieved — so that
    geometry is a hard error.
    """
    d0 = db.layout.params.d0
    if db.num_polys % d0 != 0:
        raise ParameterError(
            f"database has {db.num_polys} polynomials, which is not a "
            f"multiple of D0={d0}; {db.num_polys % d0} trailing polynomials "
            "would be silently dropped from RowSel"
        )
    return db.num_polys // d0


def row_select(
    expanded: list[BfvCiphertext],
    db: PreprocessedDatabase,
    plane: int,
) -> list[BfvCiphertext]:
    """Reduce the initial dimension: D polynomials -> 2^d ciphertexts.

    Per-poly reference path, kept as the oracle for
    :func:`row_select_vec`.
    """
    d0 = db.layout.params.d0
    if len(expanded) != d0:
        raise ParameterError(
            f"expected {d0} expanded ciphertexts, got {len(expanded)}"
        )
    num_cols = num_rowsel_cols(db)
    selected: list[BfvCiphertext] = []
    for col in range(num_cols):
        acc = expanded[0].plain_mul(db.poly(plane, 0, col))
        for row in range(1, d0):
            acc = acc + expanded[row].plain_mul(db.poly(plane, row, col))
        selected.append(acc)
    return selected


def rowsel_plane_tensor(db: PreprocessedDatabase, plane: int) -> np.ndarray:
    """One plane as the RowSel GEMM operand: (num_cols, d0, rns_count, n).

    A reshaped view of :meth:`PreprocessedDatabase.plane_tensor` (poly
    index = col * d0 + row) with the geometry validated — the tensor the
    compute backends contract the expanded query against.
    """
    d0 = db.layout.params.d0
    num_cols = num_rowsel_cols(db)
    tensor = db.plane_tensor(plane)
    return tensor.reshape((num_cols, d0) + tensor.shape[1:])


def row_select_vec(
    expanded: BfvCiphertextVec,
    db: PreprocessedDatabase,
    plane: int,
    backend: str | ComputeBackend | None = None,
) -> list[BfvCiphertext]:
    """Batched RowSel: one modular GEMM over the plane's residue tensor.

    Element-identical to :func:`row_select` on every backend — the
    contraction accumulates the same products mod the same moduli, just
    reassociated into overflow-safe chunks.
    """
    return resolve_backend(backend).rowsel(
        expanded, rowsel_plane_tensor(db, plane), db.ring._moduli_col
    ).cts()
