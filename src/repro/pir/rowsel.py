"""RowSel (Fig. 2-(2)): first-dimension selection via plaintext-ct GEMM.

For every ColTor column ``m`` the server accumulates

    ct_out[m] = sum_{i < D0} DB[i][m] * ct_expanded[i]

which is Eq. 1 restricted to the initial dimension.  With RNS + NTT this
is exactly the 4N-parallel modular GEMM the accelerator's sysNTTUs run in
GEMM mode (Section III-A / Fig. 5).
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.he.bfv import BfvCiphertext
from repro.pir.database import PreprocessedDatabase


def row_select(
    expanded: list[BfvCiphertext],
    db: PreprocessedDatabase,
    plane: int,
) -> list[BfvCiphertext]:
    """Reduce the initial dimension: D polynomials -> 2^d ciphertexts."""
    d0 = db.layout.params.d0
    if len(expanded) != d0:
        raise ParameterError(
            f"expected {d0} expanded ciphertexts, got {len(expanded)}"
        )
    num_cols = db.num_polys // d0
    selected: list[BfvCiphertext] = []
    for col in range(num_cols):
        acc = expanded[0].plain_mul(db.poly(plane, 0, col))
        for row in range(1, d0):
            acc = acc + expanded[row].plain_mul(db.poly(plane, row, col))
        selected.append(acc)
    return selected
