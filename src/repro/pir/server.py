"""PIR server: the ExpandQuery -> RowSel -> ColTor pipeline (Fig. 2).

The server never sees the secret key; it only holds the preprocessed
database and the client's public evaluation keys.  ``answer`` runs the
batched tensor hot path by default (stacked NTTs, the RowSel modular
GEMM, per-level batched Subs/cmux — ``repro.he.batched``);
``answer_reference`` runs the original per-poly pipeline, kept as the
correctness oracle.  Both produce byte-identical ``PirResponse``
transcripts — the fast path only reassociates exact modular arithmetic.
``answer_batch`` is the multi-client batched entry point (Section III-B)
— functionally a loop, since batching changes scheduling and memory
traffic (modeled in ``repro.arch``) but not results.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.he import modmath
from repro.he.gadget import Gadget
from repro.pir.client import ClientSetup, PirQuery, PirResponse
from repro.pir.coltor import column_tournament
from repro.pir.database import PreprocessedDatabase
from repro.pir.expand import expand_query, expand_query_batched
from repro.pir.rowsel import row_select, row_select_vec


class PirServer:
    """Answers PIR queries against one preprocessed database."""

    def __init__(
        self,
        db: PreprocessedDatabase,
        setup: ClientSetup,
        use_fast: bool = True,
    ):
        self.db = db
        self.params = db.layout.params
        self.ring = db.ring
        self.gadget = Gadget(self.ring)
        self.evks = setup.evks
        self.use_fast = use_fast
        self._levels = modmath.ilog2(self.params.d0)

    def _check_query(self, query: PirQuery) -> None:
        if len(query.selection_bits) != self.params.num_dims:
            raise ParameterError(
                f"query has {len(query.selection_bits)} selection bits, database "
                f"geometry needs {self.params.num_dims}"
            )

    def answer(self, query: PirQuery) -> PirResponse:
        """Run the full pipeline for one query (fast path by default)."""
        self._check_query(query)
        if self.use_fast:
            return self._answer_fast(query)
        return self._answer_reference(query)

    def answer_reference(self, query: PirQuery) -> PirResponse:
        """Per-poly oracle pipeline, regardless of ``use_fast``."""
        self._check_query(query)
        return self._answer_reference(query)

    def _answer_fast(self, query: PirQuery) -> PirResponse:
        expanded = expand_query_batched(
            query.packed, self.evks, self._levels, self.gadget
        )
        plane_cts = []
        for plane in range(self.db.plane_count):
            entries = row_select_vec(expanded, self.db, plane)
            if query.selection_bits:
                result = column_tournament(
                    entries, query.selection_bits, self.gadget, use_fast=True
                )
            else:
                result = entries[0]
            plane_cts.append(result)
        return PirResponse(plane_cts=plane_cts)

    def _answer_reference(self, query: PirQuery) -> PirResponse:
        expanded = expand_query(query.packed, self.evks, self._levels, self.gadget)
        plane_cts = []
        for plane in range(self.db.plane_count):
            entries = row_select(expanded, self.db, plane)
            if query.selection_bits:
                result = column_tournament(entries, query.selection_bits, self.gadget)
            else:
                result = entries[0]
            plane_cts.append(result)
        return PirResponse(plane_cts=plane_cts)

    def answer_batch(self, queries: list[PirQuery]) -> list[PirResponse]:
        """Serve a multi-client batch (Section III-B).

        Functionally identical to answering one by one; on hardware the DB
        scan in RowSel is amortized across the batch, which is what the
        performance models in ``repro.arch`` capture.  Each answer runs
        the batched tensor hot path (or the oracle, per ``use_fast``).
        """
        return [self.answer(query) for query in queries]
