"""PIR server: the ExpandQuery -> RowSel -> ColTor pipeline (Fig. 2).

The server never sees the secret key; it only holds the preprocessed
database and the client's public evaluation keys.  ``answer`` runs the
pipeline through a :class:`~repro.he.backend.ComputeBackend` resolved
once at construction (``planned`` by default; ``eager`` is the
historical stacked-numpy path kept as the oracle); ``answer_reference``
runs the original per-poly pipeline.  All paths produce byte-identical
``PirResponse`` transcripts — every backend only reassociates exact
modular arithmetic.  ``answer_batch`` is the multi-client batched entry
point (Section III-B) — functionally a loop, since batching changes
scheduling and memory traffic (modeled in ``repro.arch``) but not
results.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.he import modmath
from repro.he.backend import ComputeBackend, resolve_backend
from repro.he.gadget import Gadget
from repro.pir.client import ClientSetup, PirQuery, PirResponse
from repro.pir.coltor import column_tournament_reference
from repro.pir.database import PreprocessedDatabase
from repro.pir.expand import expand_query
from repro.pir.rowsel import row_select, rowsel_plane_tensor


class PirServer:
    """Answers PIR queries against one preprocessed database."""

    def __init__(
        self,
        db: PreprocessedDatabase,
        setup: ClientSetup,
        backend: str | ComputeBackend | None = None,
    ):
        self.db = db
        self.params = db.layout.params
        self.ring = db.ring
        self.gadget = Gadget(self.ring)
        self.evks = setup.evks
        self.backend = resolve_backend(backend)
        self._levels = modmath.ilog2(self.params.d0)

    def _check_query(self, query: PirQuery) -> None:
        if len(query.selection_bits) != self.params.num_dims:
            raise ParameterError(
                f"query has {len(query.selection_bits)} selection bits, database "
                f"geometry needs {self.params.num_dims}"
            )

    def answer(self, query: PirQuery) -> PirResponse:
        """Run the full pipeline for one query on the resolved backend.

        The expanded query stays a residue tensor straight through
        RowSel into ColTor — no per-ciphertext lists between stages
        (backends decide how resident the tournament itself stays).
        """
        self._check_query(query)
        backend = self.backend
        expanded = backend.expand(
            query.packed, self.evks, self._levels, self.gadget
        )
        moduli_col = self.ring._moduli_col
        plane_cts = []
        for plane in range(self.db.plane_count):
            entries = backend.rowsel(
                expanded, rowsel_plane_tensor(self.db, plane), moduli_col
            )
            if query.selection_bits:
                result = backend.coltor(
                    entries, query.selection_bits, self.gadget
                )
            else:
                result = entries.ct(0)
            plane_cts.append(result)
        return PirResponse(plane_cts=plane_cts)

    def answer_reference(self, query: PirQuery) -> PirResponse:
        """Per-poly oracle pipeline, regardless of the resolved backend."""
        self._check_query(query)
        expanded = expand_query(query.packed, self.evks, self._levels, self.gadget)
        plane_cts = []
        for plane in range(self.db.plane_count):
            entries = row_select(expanded, self.db, plane)
            if query.selection_bits:
                result = column_tournament_reference(
                    entries, query.selection_bits, self.gadget
                )
            else:
                result = entries[0]
            plane_cts.append(result)
        return PirResponse(plane_cts=plane_cts)

    def answer_batch(self, queries: list[PirQuery]) -> list[PirResponse]:
        """Serve a multi-client batch (Section III-B).

        Functionally identical to answering one by one; on hardware the DB
        scan in RowSel is amortized across the batch, which is what the
        performance models in ``repro.arch`` capture.  Each answer runs
        on the server's resolved compute backend.
        """
        return [self.answer(query) for query in queries]
