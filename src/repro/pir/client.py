"""PIR client: key generation, query construction, response decoding.

The client packs the one-hot initial-dimension index into a single BFV
ciphertext (coefficient i0 set, everything else zero) and sends the d
subsequent-dimension selection bits as direct RGSW encryptions — the
paper's practical D_i = 2 construction (Section II-C), which needs exactly
one RGSW ciphertext per dimension.  Evaluation keys for ExpandQuery
(one per tree depth, Section II-A) are shipped once at setup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import LayoutError
from repro.he import modmath
from repro.he.bfv import BfvCiphertext, BfvContext, SecretKey
from repro.he.gadget import Gadget
from repro.he.poly import RingContext
from repro.he.rgsw import RgswCiphertext, rgsw_encrypt
from repro.he.sampling import Sampler
from repro.he.subs import SubsKey, generate_subs_key
from repro.params import PirParams
from repro.pir.expand import expansion_powers
from repro.pir.layout import RecordLayout


@dataclass
class ClientSetup:
    """One-time public material the client uploads to the server."""

    evks: dict[int, SubsKey]

    def size_bytes(self, params: PirParams) -> int:
        return len(self.evks) * params.evk_bytes


@dataclass
class PirQuery:
    """Per-retrieval message: one packed BFV ct + d RGSW selection bits."""

    packed: BfvCiphertext
    selection_bits: list[RgswCiphertext]

    def size_bytes(self, params: PirParams) -> int:
        return params.ct_bytes + len(self.selection_bits) * params.rgsw_bytes


@dataclass
class PirResponse:
    """One BFV ciphertext per record plane."""

    plane_cts: list[BfvCiphertext]

    def size_bytes(self, params: PirParams) -> int:
        return len(self.plane_cts) * params.ct_bytes


class PirClient:
    """Holds the secret key; builds queries and decodes responses."""

    def __init__(self, params: PirParams, ring: RingContext | None = None, seed: int | None = None):
        self.params = params
        self.ring = ring if ring is not None else RingContext(params)
        self.sampler = Sampler(self.ring, seed=seed)
        self.bfv = BfvContext(self.ring, self.sampler)
        self.gadget = Gadget(self.ring)
        self.secret_key = SecretKey.generate(self.ring, self.sampler)
        levels = modmath.ilog2(params.d0)
        self._evks = {
            r: generate_subs_key(self.bfv, self.gadget, self.secret_key, r)
            for r in expansion_powers(params.n, levels)
        }

    def setup_message(self) -> ClientSetup:
        return ClientSetup(evks=dict(self._evks))

    # -- query construction -------------------------------------------------
    def build_query(self, record_index: int, layout: RecordLayout) -> PirQuery:
        if layout.params is not self.params and layout.params != self.params:
            raise LayoutError("layout was built for different parameters")
        row, bits = layout.dimension_indices(record_index)
        coeffs = np.zeros(self.params.n, dtype=np.int64)
        coeffs[row] = self._query_scale()
        packed = self.bfv.encrypt(coeffs, self.secret_key)
        selection = [
            rgsw_encrypt(self.bfv, self.gadget, bit, self.secret_key) for bit in bits
        ]
        return PirQuery(packed=packed, selection_bits=selection)

    def _query_scale(self) -> int:
        """Compensation for the D0 factor ExpandQuery introduces."""
        p = self.params.plain_modulus
        if self.params.plain_is_power_of_two:
            return 1  # decoded values carry a D0 factor; decode divides it out
        return modmath.mod_inverse(self.params.d0, p)

    # -- response decoding -----------------------------------------------------
    def decode_response(
        self, response: PirResponse, record_index: int, layout: RecordLayout
    ) -> bytes:
        plain = [self.bfv.decrypt(ct, self.secret_key) for ct in response.plane_cts]
        return self.assemble_record(plain, record_index, layout)

    def assemble_record(
        self, plane_coeffs: list, record_index: int, layout: RecordLayout
    ) -> bytes:
        """Decoded per-plane coefficient vectors -> record bytes.

        Shared by the plain and modulus-switched response paths.
        """
        if len(plane_coeffs) != layout.plane_count:
            raise LayoutError(
                f"response has {len(plane_coeffs)} planes, layout expects "
                f"{layout.plane_count}"
            )
        chunks: list[bytes] = []
        remaining = layout.record_bytes
        for coeffs in plane_coeffs:
            if self.params.plain_is_power_of_two:
                coeffs = coeffs // self.params.d0
            nbytes = min(remaining, layout.bytes_per_plane_poly)
            offset = 0
            if layout.plane_count == 1:
                offset = layout.slot_offset_bytes(record_index)
            chunk = layout.unpack_poly(coeffs, offset + nbytes)
            chunks.append(chunk[offset : offset + nbytes])
            remaining -= nbytes
        return b"".join(chunks)
