"""repro — a reproduction of "IVE: An Accelerator for Single-Server Private
Information Retrieval Using Versatile Processing Elements" (HPCA 2026).

Layers
------
``repro.he``        BFV/RGSW homomorphic encryption substrate (RNS + NTT).
``repro.pir``       OnionPIR-style protocol: ExpandQuery / RowSel / ColTor.
``repro.sched``     BFS/DFS/hierarchical-search operation scheduling (Fig. 7/8).
``repro.arch``      The IVE accelerator: cycle simulator + area/power/energy.
``repro.systems``   Scale-up (HBM+LPDDR), scale-out cluster, batch scheduler.
``repro.serve``     Async multi-shard serving runtime + load-test harness.
``repro.baselines`` CPU/GPU/ARK-like/INSPIRE/SimplePIR/KsPIR comparisons.
``repro.analysis``  Complexity, arithmetic-intensity, and workload models.

Quickstart
----------
>>> from repro import PirParams, PirDatabase, PirProtocol
>>> params = PirParams.small()
>>> db = PirDatabase.random(params, num_records=32, record_bytes=128, seed=0)
>>> protocol = PirProtocol(params, db, seed=1)
>>> protocol.retrieve(7).record == db.record(7)
True
"""

from repro.params import PirParams
from repro.pir.database import PirDatabase
from repro.pir.protocol import PirProtocol

__version__ = "1.0.0"

__all__ = ["PirDatabase", "PirParams", "PirProtocol", "__version__"]
