"""Utilization-based energy model (Section VI-B energy comparison).

Energy = sum over functional units of (busy core-seconds x per-core peak
power) + DRAM transfer energy + a NoC/RF activity share folded into the
unit terms.  The DRAM energy-per-bit is calibrated so the full IVE
configuration lands at the paper's ~0.03 J/query on the 2 GB database;
component utilization comes straight from the cycle simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.power import PowerBreakdown, power
from repro.arch.simulator import IveSimulator

#: DRAM access energy: 4 pJ/bit, mid-range of published HBM3 estimates
#: ([81]-style accounting); with the unit-utilization terms this lands the
#: full IVE at the paper's ~0.03 J/query on the 2 GB database.
DRAM_J_PER_BYTE = 4e-12 * 8

#: Scratchpad/NoC activity rides with the unit busy time (calibration).
ACTIVITY_OVERHEAD = 0.30


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules per batch and per query."""

    unit_joules: dict
    dram_joules: float
    batch: int

    @property
    def total_joules(self) -> float:
        return sum(self.unit_joules.values()) + self.dram_joules

    @property
    def joules_per_query(self) -> float:
        return self.total_joules / self.batch


def batch_energy(sim: IveSimulator, batch: int) -> EnergyBreakdown:
    """Energy for one batch on one IVE system."""
    pb: PowerBreakdown = power(sim.config)
    busy = sim.unit_busy_seconds(batch)
    unit_joules = {
        unit: seconds * pb.unit_power(unit) * (1.0 + ACTIVITY_OVERHEAD)
        for unit, seconds in busy.items()
    }
    dram_bytes = total_dram_bytes(sim, batch)
    return EnergyBreakdown(
        unit_joules=unit_joules,
        dram_joules=dram_bytes * DRAM_J_PER_BYTE,
        batch=batch,
    )


def total_dram_bytes(sim: IveSimulator, batch: int) -> float:
    """All DRAM traffic of one batch: DB scan + per-query tree traffic."""
    p = sim.params
    db_bytes = p.num_db_polys * p.poly_bytes
    expand_sched, _ = sim.expand_timing()
    coltor_sched, _ = sim.coltor_timing()
    per_query = (
        expand_sched.traffic().total_bytes
        + coltor_sched.traffic().total_bytes
        + (p.d0 + p.num_db_polys // p.d0) * p.ct_bytes  # RowSel ct streams
    )
    return db_bytes + batch * per_query


def energy_per_query(sim: IveSimulator, batch: int) -> float:
    return batch_energy(sim, batch).joules_per_query


def edap(
    energy_j: float, delay_s: float, area_mm2: float
) -> float:
    """Energy-delay-area product (Section VI-E's comparison metric)."""
    if min(energy_j, delay_s, area_mm2) <= 0:
        raise ValueError("EDAP factors must be positive")
    return energy_j * delay_s * area_mm2


def edap_ratio(
    energy_a: float, delay_a: float, area_a: float,
    energy_b: float, delay_b: float, area_b: float,
) -> float:
    """EDAP(b) / EDAP(a): how much worse b is than a."""
    return edap(energy_b, delay_b, area_b) / edap(energy_a, delay_a, area_a)


def efficiency_summary(sim: IveSimulator, batch: int) -> dict:
    """Energy / delay / per-query figures used by Figs. 12-14."""
    lat = sim.latency(batch)
    eb = batch_energy(sim, batch)
    return {
        "qps": lat.qps,
        "latency_s": lat.total_s,
        "joules_per_query": eb.joules_per_query,
        "dram_joules": eb.dram_joules,
        "unit_joules": dict(eb.unit_joules),
    }
