"""Hardware configuration of IVE and its ablation/baseline design points.

Default values follow Section IV and VI-A: 32 vector cores at 1 GHz, 64
lanes each, two sysNTTUs per core (each a 32x16 systolic array doubling as
a fully pipelined NTT datapath), an iCRTU with sqrt(N) cells, a 64-lane
EWU, a fully pipelined AutoU, and 5 MB of managed SRAM per core (4 MB RF +
448 KB DB buffer + 448 KB iCRT buffer).  The memory system is four 24 GB
HBM stacks at 512 GB/s each, optionally extended with four 128 GB LPDDR
modules at 128 GB/s each (Section V scale-up).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError

KB = 1 << 10
MB = 1 << 20
GB = 1 << 30


@dataclass(frozen=True)
class MemoryConfig:
    """Off-chip memory: HBM for working data, LPDDR as a DB expander."""

    hbm_stacks: int = 4
    hbm_bw_per_stack: float = 512e9  # B/s (HBM3 [82])
    hbm_capacity_per_stack: int = 24 * GB
    lpddr_modules: int = 4
    lpddr_bw_per_module: float = 128e9  # B/s ([83])
    lpddr_capacity_per_module: int = 128 * GB

    @property
    def hbm_bandwidth(self) -> float:
        return self.hbm_stacks * self.hbm_bw_per_stack

    @property
    def hbm_capacity(self) -> int:
        return self.hbm_stacks * self.hbm_capacity_per_stack

    @property
    def lpddr_bandwidth(self) -> float:
        return self.lpddr_modules * self.lpddr_bw_per_module

    @property
    def lpddr_capacity(self) -> int:
        return self.lpddr_modules * self.lpddr_capacity_per_module


@dataclass(frozen=True)
class IveConfig:
    """One accelerator chip (plus its memory system)."""

    name: str = "IVE"
    num_cores: int = 32
    lanes: int = 64
    clock_hz: float = 1e9
    # Functional units, per core:
    sysnttu_per_core: int = 2
    sysnttu_gemm_macs: int = 512  # 32 x 16 systolic cells, 1 MMAD/cycle each
    sysnttu_array_cols: int = 16  # logN + 4: columns a streamed element reuses
    sysnttu_ntt_butterflies: int = 384  # sqrt(N)/2 * logN for N = 2^12
    ewu_macs: int = 64  # sqrt(N) element-wise MMADs per cycle
    icrtu_cells: int = 64  # sqrt(N) iCRT cells
    # Design-point switches:
    unified_sysnttu: bool = True  # False = separate NTT unit + GEMM unit (Base)
    special_primes: bool = True  # Solinas-like moduli (Section IV-G)
    gemm_on_madu: bool = False  # ARK-like: GEMM mapped to multiply-add units
    madu_macs: int = 128  # two 64-lane MADUs (ARK [59])
    # On-chip SRAM, per core (capacities and Section VI-A bandwidths):
    rf_bytes: int = 4 * MB
    db_buffer_bytes: int = 448 * KB
    icrt_buffer_bytes: int = 448 * KB
    rf_bandwidth: float = 2.04e12  # B/s, wide-ported interleaved banks
    db_buffer_bandwidth: float = 0.81e12
    icrt_buffer_bandwidth: float = 0.41e12
    # Interconnect:
    noc_bytes_per_cycle_per_core: int = 256  # fixed-wire global transposition
    pcie_bandwidth: float = 128e9  # scale-out switch (Section V)
    memory: MemoryConfig = MemoryConfig()

    def __post_init__(self):
        if self.num_cores < 1 or self.lanes < 1:
            raise ParameterError("cores and lanes must be positive")
        if self.sysnttu_per_core < 1:
            raise ParameterError("need at least one NTT unit per core")

    # -- derived throughputs (per core, per cycle) -------------------------
    @property
    def ntt_butterflies_per_core(self) -> int:
        return self.sysnttu_per_core * self.sysnttu_ntt_butterflies

    @property
    def gemm_macs_per_core(self) -> int:
        """GEMM throughput: systolic sysNTTUs, or MADUs for the ARK-like point."""
        if self.gemm_on_madu:
            return self.madu_macs
        return self.sysnttu_per_core * self.sysnttu_gemm_macs

    @property
    def chip_gemm_macs_per_cycle(self) -> int:
        return self.num_cores * self.gemm_macs_per_core

    @property
    def chip_gemm_tops(self) -> float:
        """Modular multiply-and-add throughput in TOPS (paper: 1 TOPS/core)."""
        return self.chip_gemm_macs_per_cycle * self.clock_hz / 1e12

    @property
    def sram_per_core(self) -> int:
        return self.rf_bytes + self.db_buffer_bytes + self.icrt_buffer_bytes

    @property
    def total_sram(self) -> int:
        return self.num_cores * self.sram_per_core

    @property
    def per_core_hbm_bandwidth(self) -> float:
        """Each HBM channel statically mapped to a core (Section IV-F)."""
        return self.memory.hbm_bandwidth / self.num_cores

    @property
    def noc_bandwidth(self) -> float:
        return self.num_cores * self.noc_bytes_per_cycle_per_core * self.clock_hz

    # -- named design points ------------------------------------------------
    @staticmethod
    def ive() -> "IveConfig":
        """The full 32-core IVE configuration (Table II)."""
        return IveConfig()

    @staticmethod
    def base() -> "IveConfig":
        """Fig. 13e 'Base': separate NTT and GEMM units, generic primes."""
        return IveConfig(name="Base", unified_sysnttu=False, special_primes=False)

    @staticmethod
    def base_sp() -> "IveConfig":
        """Fig. 13e '+Sp': Base plus special primes."""
        return IveConfig(name="+Sp", unified_sysnttu=False, special_primes=True)

    @staticmethod
    def ark_like() -> "IveConfig":
        """Fig. 14a ARK-like baseline: 64 cores, MADU-mapped GEMM, 2 MB/core.

        Total NTT throughput matches IVE (64 NTTUs chip-wide); GEMM falls
        back to the two 64-lane multiply-add units; per-core scratchpad is
        2 MB (Section VI-E).
        """
        return IveConfig(
            name="ARK-like",
            num_cores=64,
            sysnttu_per_core=1,
            unified_sysnttu=False,
            gemm_on_madu=True,
            madu_macs=128,
            rf_bytes=2 * MB,  # one flat 2 MB scratchpad, no carved buffers
            db_buffer_bytes=0,
            icrt_buffer_bytes=0,
        )
