"""Area model calibrated to Table II (substitute for RTL synthesis).

The paper's component areas come from ASAP7 synthesis + FinCACTI; every
experiment consumes only the per-component totals and the relative deltas
of the design points, so we reproduce those with an analytical model:

* Table II per-component constants anchor the full IVE configuration.
* The sysNTTU's GEMM-mode additions (muxes, drain path) are the "1.4% of
  chip area" the paper quotes in Section VI-E; removing them yields the
  plain NTTU of the Base design point, which instead needs a dedicated
  512-MAC systolic GEMM unit (calibrated so Base -> +SysNTTU is the paper's
  7% chip-logic reduction, Fig. 13e).
* Generic-prime modular multipliers are larger than the Solinas-like
  special-prime ones (9.1% at circuit level, Section IV-G); at system
  level this appears as the 4% delta of Fig. 13e's +Sp point, which the
  multiplier-factor below is calibrated to.
* SRAM area scales linearly with capacity; NoC with core count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import MB, IveConfig

# --- Table II anchors (mm^2, full IVE: 32 cores, 5 MB SRAM/core) ----------
TABLE2_AREA = {
    "sysNTTU": 0.77,  # per core, both units
    "iCRTU": 0.05,
    "EWU": 0.10,
    "AutoU": 0.07,
    "RF & buffers": 1.38,
    "other": 0.54,  # per-core control/dispatch not itemized in Table II
}
TABLE2_CORE_TOTAL = 2.91
TABLE2_NOC = 2.6
TABLE2_HBM = 59.6
TABLE2_TOTAL = 155.3

#: GEMM-mode additions across all sysNTTUs: 1.4% of the chip (Section VI-E).
_GEMM_MODE_ADDITIONS_CHIP = 0.014 * TABLE2_TOTAL  # ~2.17 mm^2
#: Plain-NTTU pair area once the GEMM-mode muxes are removed.
_NTT_ONLY_PAIR = TABLE2_AREA["sysNTTU"] - _GEMM_MODE_ADDITIONS_CHIP / 32
#: Dedicated 512-MAC GEMM unit pair for the Base design point, calibrated so
#: that +Sp -> +SysNTTU is a 7% chip-logic reduction (Fig. 13e).
_DEDICATED_GEMM_PAIR = 0.295
#: Area factor for multiplier-bearing units under generic primes,
#: calibrated so +Sp saves 4% of chip logic (Fig. 13e; rooted in the 9.1%
#: modular-multiplier reduction of Section IV-G).
_GENERIC_PRIME_FACTOR = 1.13
#: SRAM density from the RF anchor: 1.38 mm^2 per 5 MB.
_SRAM_MM2_PER_MB = TABLE2_AREA["RF & buffers"] / 4.875  # 4 MB RF + two 448 KB buffers
#: Multiply-add unit (ARK-like GEMM fallback): EWU-sized per 64 lanes.
_MADU_AREA = TABLE2_AREA["EWU"]


@dataclass(frozen=True)
class AreaBreakdown:
    """mm^2 by component (Table II rows)."""

    per_core: dict
    core_total: float
    cores_total: float
    noc: float
    hbm: float

    @property
    def total(self) -> float:
        return self.cores_total + self.noc + self.hbm

    @property
    def logic_total(self) -> float:
        """Chip area excluding HBM (the Fig. 13e comparison basis)."""
        return self.cores_total + self.noc


def area(config: IveConfig) -> AreaBreakdown:
    """Component-level area for any design point."""
    mult_factor = 1.0 if config.special_primes else _GENERIC_PRIME_FACTOR
    per_core: dict[str, float] = {}

    pair_scale = config.sysnttu_per_core / 2.0  # Table II anchors two units
    if config.unified_sysnttu:
        per_core["sysNTTU"] = TABLE2_AREA["sysNTTU"] * pair_scale * mult_factor
    else:
        per_core["NTTU"] = _NTT_ONLY_PAIR * pair_scale * mult_factor
        if not config.gemm_on_madu:
            per_core["GEMM unit"] = _DEDICATED_GEMM_PAIR * pair_scale * mult_factor
    if config.gemm_on_madu:
        per_core["MADU"] = 2 * _MADU_AREA * mult_factor

    per_core["iCRTU"] = TABLE2_AREA["iCRTU"] * mult_factor
    per_core["EWU"] = TABLE2_AREA["EWU"] * mult_factor
    per_core["AutoU"] = TABLE2_AREA["AutoU"]
    per_core["RF & buffers"] = _SRAM_MM2_PER_MB * (config.sram_per_core / MB)
    per_core["other"] = TABLE2_AREA["other"]

    core_total = sum(per_core.values())
    noc = TABLE2_NOC * config.num_cores / 32.0
    hbm = TABLE2_HBM * config.memory.hbm_stacks / 4.0
    return AreaBreakdown(
        per_core=per_core,
        core_total=core_total,
        cores_total=core_total * config.num_cores,
        noc=noc,
        hbm=hbm,
    )
