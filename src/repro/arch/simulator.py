"""Cycle-level simulator of one IVE chip serving a batched PIR pipeline.

Mirrors the paper's methodology (Section VI-A): an operation graph is
walked in topological order; each op issues once its dependencies are
cleared and its functional unit's pipeline is free.  Units are modeled as
throughput resources (occupancy cycles) with a constant pipeline-fill
latency; each core owns a statically mapped DRAM channel.

Query-level parallelism makes ExpandQuery and ColTor embarrassingly
parallel across cores (one query per core, no interaction — even the HBM
channels are per-core), so the simulator runs ONE core on ONE query and
scales by ceil(batch / cores).  RowSel exploits coefficient-level
parallelism and is modeled as the tiled modular GEMM stream it is
(Fig. 5): a full pass over the preprocessed DB overlapped with
compute-bound accumulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import IveConfig
from repro.arch.opgraph import GraphBuilder, OpGraph
from repro.arch.units import PIPELINE_FILL, Unit, UnitTimings
from repro.errors import SimulationError
from repro.params import PirParams
from repro.sched.traversal import schedule_coltor, schedule_expand
from repro.sched.tree import Schedule, ScheduleConfig, Traversal

#: Dispatch, SRAM bank-conflict, DRAM refresh and inter-step sync losses
#: that the unit-occupancy simulation does not model individually; one
#: global factor on the compute-step times, calibrated against Fig. 12's
#: absolute QPS (the shape of every result is independent of it).
TIMING_OVERHEAD = 1.12


@dataclass(frozen=True)
class StepTiming:
    """Simulated cycles and DRAM traffic for one pipeline step."""

    cycles: float
    dram_bytes: float
    busy_cycles_by_unit: dict

    def seconds(self, clock_hz: float) -> float:
        return self.cycles / clock_hz


@dataclass(frozen=True)
class PirLatency:
    """End-to-end batched latency breakdown (Fig. 13 bars)."""

    config: IveConfig
    params: PirParams
    batch: int
    expand_s: float
    rowsel_s: float
    coltor_s: float
    noc_s: float
    comm_s: float

    @property
    def total_s(self) -> float:
        return self.expand_s + self.rowsel_s + self.coltor_s + self.noc_s + self.comm_s

    @property
    def qps(self) -> float:
        return self.batch / self.total_s

    def breakdown(self) -> dict[str, float]:
        return {
            "ExpandQuery": self.expand_s,
            "RowSel": self.rowsel_s,
            "ColTor": self.coltor_s,
            "NoC": self.noc_s,
            "Comm": self.comm_s,
        }


@dataclass(frozen=True)
class UpdateLatency:
    """Modeled time to absorb a database delta of ``dirty_polys`` polys.

    Three overlapped streams (the delta path is the RowSel orchestration
    run backwards): raw record bytes arrive over PCIe, the cores CRT+NTT
    each dirty polynomial, and the preprocessed results stream out to the
    database memory (HBM, or LPDDR when the DB is offloaded).  The apply
    takes the slowest stream; serving continues against the previous
    epoch meanwhile (``repro.mutate``), so this is swap *lag*, not
    downtime.
    """

    dirty_polys: int
    ingest_s: float  # PCIe: raw plaintext records in
    ntt_s: float  # compute: CRT + NTT per dirty polynomial
    write_s: float  # DB memory: preprocessed polynomials out

    @property
    def total_s(self) -> float:
        return max(self.ingest_s, self.ntt_s, self.write_s)

    def breakdown(self) -> dict[str, float]:
        return {"Ingest": self.ingest_s, "NTT": self.ntt_s, "Write": self.write_s}


def simulate_graph(graph: OpGraph) -> StepTiming:
    """Event-driven scheduling: ops issue once dependencies clear (§VI-A).

    Each functional unit holds a ready queue ordered by (ready time, op id)
    and executes greedily; finishing an op releases its successors.  This
    lets independent tree nodes fill one another's dependency gaps, which
    is exactly what the deeply pipelined hardware does.
    """
    import heapq

    num_ops = len(graph.ops)
    if num_ops == 0:
        return StepTiming(cycles=0.0, dram_bytes=0.0, busy_cycles_by_unit={})
    succs: list[list[int]] = [[] for _ in range(num_ops)]
    indeg = [0] * num_ops
    for op in graph.ops:
        for dep in op.deps:
            succs[dep].append(op.op_id)
            indeg[op.op_id] += 1

    queues: dict[Unit, list] = {}
    unit_free: dict[Unit, float] = {}
    busy: dict[Unit, float] = {}
    ready_at = [0.0] * num_ops
    makespan = 0.0

    def dispatch(unit: Unit) -> tuple[float, int] | None:
        queue = queues.get(unit)
        if not queue:
            return None
        ready, op_id = heapq.heappop(queue)
        start = max(unit_free.get(unit, 0.0), ready)
        cycles = graph.ops[op_id].cost.cycles
        finish = start + cycles
        unit_free[unit] = finish
        busy[unit] = busy.get(unit, 0.0) + cycles
        return finish, op_id

    def enqueue(op_id: int, ready: float) -> None:
        unit = graph.ops[op_id].cost.unit
        heapq.heappush(queues.setdefault(unit, []), (ready, op_id))

    events: list[tuple[float, int]] = []  # (finish time, op id)
    for op in graph.ops:
        if indeg[op.op_id] == 0:
            enqueue(op.op_id, 0.0)
    # Kick every unit once, then run the completion-event loop.
    for unit in list(queues):
        result = dispatch(unit)
        if result:
            heapq.heappush(events, result)
    while events:
        finish, op_id = heapq.heappop(events)
        makespan = max(makespan, finish)
        for succ in succs[op_id]:
            indeg[succ] -= 1
            ready_at[succ] = max(ready_at[succ], finish + PIPELINE_FILL)
            if indeg[succ] == 0:
                enqueue(succ, ready_at[succ])
        # The finishing unit and any unit that just gained work may dispatch.
        for unit in list(queues):
            while queues[unit] and unit_free.get(unit, 0.0) <= finish:
                result = dispatch(unit)
                if result:
                    heapq.heappush(events, result)
                else:
                    break
    if makespan < 0:
        raise SimulationError("negative makespan")
    return StepTiming(cycles=makespan, dram_bytes=0.0, busy_cycles_by_unit=busy)


class IveSimulator:
    """Performance model for one IVE chip on one parameter set."""

    def __init__(
        self,
        config: IveConfig,
        params: PirParams,
        traversal: Traversal = Traversal.HS_DFS,
        reduction_overlap: bool = True,
        db_bandwidth: float | None = None,
        db_on_hbm: bool | None = None,
    ):
        self.config = config
        self.params = params
        self.timings = UnitTimings(config, params)
        self.traversal = traversal
        self.reduction_overlap = reduction_overlap
        #: bandwidth serving the DB scan in RowSel (HBM, or LPDDR when the
        #: DB is offloaded — Section V scale-up).
        self.db_bandwidth = (
            db_bandwidth if db_bandwidth is not None else config.memory.hbm_bandwidth
        )
        #: whether the DB stream shares the HBM channel with the per-query
        #: ciphertexts (serialized traffic) or rides its own LPDDR channel.
        #: Inferred from the bandwidth when not stated — but callers that
        #: hand in a *reduced* channel (update-bandwidth headroom carved
        #: out, Section V + repro.mutate) must say so explicitly, since a
        #: diminished HBM channel no longer equals the full one.
        self.db_on_hbm = (
            db_on_hbm
            if db_on_hbm is not None
            else self.db_bandwidth == config.memory.hbm_bandwidth
        )
        self._schedule_cfg = ScheduleConfig(
            capacity_bytes=config.rf_bytes,
            traversal=traversal,
            reduction_overlap=reduction_overlap,
        )
        self._expand_cache: tuple[Schedule, StepTiming] | None = None
        self._coltor_cache: tuple[Schedule, StepTiming] | None = None

    # -- per-query single-core steps (QLP) ----------------------------------
    def expand_timing(self) -> tuple[Schedule, StepTiming]:
        if self._expand_cache is None:
            schedule = schedule_expand(self.params, self._schedule_cfg)
            graph = GraphBuilder(
                self.timings,
                self.config.per_core_hbm_bandwidth,
                self.reduction_overlap,
            ).build(schedule)
            self._expand_cache = (schedule, simulate_graph(graph))
        return self._expand_cache

    def coltor_timing(self) -> tuple[Schedule, StepTiming]:
        if self._coltor_cache is None:
            schedule = schedule_coltor(self.params, self._schedule_cfg)
            graph = GraphBuilder(
                self.timings,
                self.config.per_core_hbm_bandwidth,
                self.reduction_overlap,
            ).build(schedule)
            self._coltor_cache = (schedule, simulate_graph(graph))
        return self._coltor_cache

    # -- RowSel (CLP, chip-wide tiled GEMM) -------------------------------------
    def rowsel_seconds(self, batch: int, db_copies: int = 1) -> float:
        """Roofline of the batched first dimension: max(DB stream, GEMM, cts).

        The decoupled orchestration prefetches the DB stream and writes
        selected ciphertexts behind the accumulation, so memory and compute
        overlap; the step takes the maximum of the three occupancies.  The
        DB may stream from LPDDR (scale-up offload) while the per-query
        ciphertexts always ride on HBM — separate channels.

        ``db_copies`` is the number of distinct ``num_db_polys``-sized
        databases streamed during the step.  Plain multi-client batching
        shares ONE database across the batch (``db_copies=1``); a cuckoo
        batch-PIR pass runs each query against its own bucket database, so
        the stream covers every bucket once (``db_copies=num_buckets``)
        while each query's GEMM still touches only its bucket.
        """
        p, c = self.params, self.config
        db_bytes = db_copies * p.num_db_polys * p.poly_bytes
        stream_s = db_bytes / self.db_bandwidth
        macs = batch * 2.0 * p.num_db_polys * p.rns_count * p.n
        gemm_s = macs / (c.chip_gemm_macs_per_cycle * c.clock_hz)
        ct_bytes = batch * (p.d0 + (p.num_db_polys // p.d0)) * p.ct_bytes
        ct_s = ct_bytes / c.memory.hbm_bandwidth
        if self.db_on_hbm:
            # DB and ciphertexts share HBM: their traffic serializes.
            return max(gemm_s, stream_s + ct_s)
        return max(gemm_s, stream_s, ct_s)

    def min_db_read_seconds(self) -> float:
        """The 'Min. latency (DB read)' floor of Fig. 13c/d."""
        return self.params.num_db_polys * self.params.poly_bytes / self.db_bandwidth

    # -- NoC transposition (Section IV-E) -----------------------------------------
    def noc_seconds(self, batch: int) -> float:
        """Two layout transposes: QLP->CLP after expand, CLP->QLP before ColTor."""
        p = self.params
        expand_out = batch * p.d0 * p.ct_bytes
        rowsel_out = batch * (p.num_db_polys // p.d0) * p.ct_bytes
        return (expand_out + rowsel_out) / self.config.noc_bandwidth

    # -- host communication ------------------------------------------------------
    def comm_seconds(self, batch: int, upload_overlap: float = 1.0) -> float:
        """PCIe transfer time on the critical path.

        Each query ships a few MB of client-specific data (one BFV ct plus
        d RGSW bits).  Uploads stream in while the previous batch computes
        and during the batching window, so by default only the response
        download (one ct per query plane) sits on the critical path;
        ``upload_overlap < 1`` exposes a fraction of the upload.
        """
        p = self.params
        upload = p.ct_bytes + p.num_dims * p.rgsw_bytes
        download = p.ct_bytes
        exposed = download + (1.0 - upload_overlap) * upload
        return batch * exposed / self.config.pcie_bandwidth

    # -- end-to-end -------------------------------------------------------------
    def latency(self, batch: int, db_copies: int = 1) -> PirLatency:
        """Batched pipeline latency: steps are sequential (Section IV-C)."""
        if batch < 1:
            raise SimulationError("batch must be >= 1")
        rounds = math.ceil(batch / self.config.num_cores)
        _, expand = self.expand_timing()
        _, coltor = self.coltor_timing()
        clock = self.config.clock_hz
        return PirLatency(
            config=self.config,
            params=self.params,
            batch=batch,
            expand_s=TIMING_OVERHEAD * rounds * expand.cycles / clock,
            rowsel_s=TIMING_OVERHEAD * self.rowsel_seconds(batch, db_copies),
            coltor_s=TIMING_OVERHEAD * rounds * coltor.cycles / clock,
            noc_s=self.noc_seconds(batch),
            comm_s=self.comm_seconds(batch),
        )

    def batchpir_pass_latency(self, num_buckets: int) -> PirLatency:
        """One cuckoo batch-PIR pass on this simulator's BUCKET geometry.

        The pass is ``num_buckets`` queries — one per bucket, dummies
        included — each expanded/toured like any query, with RowSel
        streaming every bucket's database exactly once.
        """
        return self.latency(num_buckets, db_copies=num_buckets)

    def kvpir_lookup_latency(self, candidates: int) -> PirLatency:
        """One keyword lookup standing alone on the slot-table geometry.

        A keyword lookup is ``candidates`` index queries — the key's
        cuckoo candidate slots plus the public stash slots — that all
        resolve against the same slot table, so RowSel streams the
        database once while ExpandQuery/ColTor run per candidate.  The
        per-lookup cost is the returned latency's ``total_s`` (its
        ``batch`` field counts candidate queries, not lookups).
        """
        if candidates < 1:
            raise SimulationError("a lookup must probe at least one candidate")
        return self.latency(candidates)

    # -- hint-PIR online phase (repro.hintpir) -------------------------------
    def hintpir_online_latency(self, batch: int, entry_bits: int = 8) -> PirLatency:
        """One batched hint-PIR online window: a plaintext ``DB @ Q`` GEMM.

        SimplePIR's entire online server computation is one modular GEMM
        over the *raw* database (Z_p entries of ``entry_bits`` bits, laid
        out record-per-column: ``num_db_polys`` columns of
        ``poly_payload_bytes`` records) — no ExpandQuery, no ColTor, no
        NTT domain, and the stream covers ``db_raw_bytes`` instead of the
        RNS/NTT-expanded ``num_db_polys * poly_bytes``.  That raw-vs-
        preprocessed footprint gap plus the skipped per-query pipeline
        stages is exactly the paper's Table IV argument that IVE's GEMM
        path subsumes SimplePIR.

        Roofline like :meth:`rowsel_seconds`: the DB stream, the query
        matrix stream, and the MAC throughput overlap, with DB and query
        traffic serializing when both ride HBM.  Each Z_p entry costs one
        MAC per query (plaintext GEMM — no ciphertext component pair).
        The response is one Z_q word per matrix row per query; uploads
        overlap the batching window, so only the download is exposed on
        PCIe, mirroring :meth:`comm_seconds`.
        """
        if batch < 1:
            raise SimulationError("batch must be >= 1")
        if entry_bits < 1:
            raise SimulationError("entry_bits must be >= 1")
        p, c = self.params, self.config
        word_bytes = 4  # Z_q response/query words (q fits 32 bits)
        entries = p.db_raw_bytes * 8 // entry_bits
        rows = p.poly_payload_bytes * 8 // entry_bits  # entries per record
        cols = p.num_db_polys  # one record per column
        stream_s = p.db_raw_bytes / self.db_bandwidth
        query_s = batch * cols * word_bytes / c.memory.hbm_bandwidth
        gemm_s = batch * entries / (c.chip_gemm_macs_per_cycle * c.clock_hz)
        if self.db_on_hbm:
            rowsel_s = max(gemm_s, stream_s + query_s)
        else:
            rowsel_s = max(gemm_s, stream_s, query_s)
        return PirLatency(
            config=c,
            params=p,
            batch=batch,
            expand_s=0.0,
            rowsel_s=TIMING_OVERHEAD * rowsel_s,
            coltor_s=0.0,
            noc_s=0.0,
            comm_s=batch * rows * word_bytes / c.pcie_bandwidth,
        )

    def min_raw_db_read_seconds(self) -> float:
        """One pass over the raw (un-preprocessed) database — the hint-PIR
        analog of :meth:`min_db_read_seconds`, and the waiting-window floor
        for a hint-tier shard."""
        return self.params.db_raw_bytes / self.db_bandwidth

    # -- online updates (repro.mutate) ---------------------------------------
    def update_apply_latency(self, dirty_polys: int) -> UpdateLatency:
        """Cost of re-preprocessing ``dirty_polys`` database polynomials.

        The delta path of ``repro.mutate``: only the polynomials whose
        records changed are re-packed, CRT'd, and NTT'd, then written back
        over the preprocessed database.  NTTs are embarrassingly parallel
        across dirty polynomials, so the compute stream scales across all
        cores; ingest rides PCIe and the write-back rides the database
        channel (HBM or LPDDR per Section V placement).  A full
        re-preprocess is the same call at ``dirty_polys = num_db_polys``
        — the ratio is the modeled delta-apply speedup.
        """
        if dirty_polys < 0:
            raise SimulationError("dirty polynomial count cannot be negative")
        p, c = self.params, self.config
        ntt_cycles = dirty_polys * self.timings.ntt_poly_cycles()
        return UpdateLatency(
            dirty_polys=dirty_polys,
            ingest_s=dirty_polys * p.plain_poly_bytes / c.pcie_bandwidth,
            ntt_s=TIMING_OVERHEAD * ntt_cycles / (c.num_cores * c.clock_hz),
            write_s=dirty_polys * p.poly_bytes / self.db_bandwidth,
        )

    def full_preprocess_latency(self) -> UpdateLatency:
        """Re-preprocessing the whole database (the delta path's baseline)."""
        return self.update_apply_latency(self.params.num_db_polys)

    def qps(self, batch: int) -> float:
        return self.latency(batch).qps

    def single_query_latency(self) -> PirLatency:
        return self.latency(1)

    # -- utilization (for the energy model) ----------------------------------------
    def unit_busy_seconds(self, batch: int) -> dict[str, float]:
        """Aggregate per-unit busy time across the whole chip for one batch."""
        rounds = math.ceil(batch / self.config.num_cores)
        active_cores = min(batch, self.config.num_cores)
        _, expand = self.expand_timing()
        _, coltor = self.coltor_timing()
        clock = self.config.clock_hz
        busy: dict[str, float] = {}
        for timing in (expand, coltor):
            for unit, cycles in timing.busy_cycles_by_unit.items():
                busy[unit.value] = (
                    busy.get(unit.value, 0.0)
                    + rounds * active_cores * cycles / clock
                )
        # RowSel: aggregate GEMM busy core-seconds across the chip.
        p, c = self.params, self.config
        macs = batch * 2.0 * p.num_db_polys * p.rns_count * p.n
        rowsel_unit = "ewu" if c.gemm_on_madu else "sysnttu"
        busy[rowsel_unit] = busy.get(rowsel_unit, 0.0) + macs / (
            c.gemm_macs_per_core * c.clock_hz
        )
        return busy
