"""Operation-graph construction: schedule steps -> functional-unit ops.

Mirrors the paper's simulator description (Section VI-A): each high-level
operation (Subs, external product) is decomposed into core functions —
automorphism, iNTT, iCRT, digit NTTs, gadget GEMM, element-wise combine —
with explicit dependencies, and every DRAM transfer from the schedule
becomes a memory op that the decoupled-orchestration front end may issue
early (prefetch).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.units import OpCost, Unit, UnitTimings
from repro.params import PirParams
from repro.sched.tree import Schedule, StepKind


@dataclass
class GraphOp:
    """One node of the operation graph."""

    op_id: int
    cost: OpCost
    deps: list[int] = field(default_factory=list)


@dataclass
class OpGraph:
    """Topologically ordered ops for one query's tree step."""

    ops: list[GraphOp]

    def __len__(self) -> int:
        return len(self.ops)

    def total_cycles_by_unit(self) -> dict[Unit, float]:
        totals: dict[Unit, float] = {}
        for op in self.ops:
            totals[op.cost.unit] = totals.get(op.cost.unit, 0.0) + op.cost.cycles
        return totals


class GraphBuilder:
    """Expands a :class:`Schedule` into unit-level ops with dependencies."""

    def __init__(
        self,
        timings: UnitTimings,
        memory_bandwidth: float,
        reduction_overlap: bool = False,
    ):
        self.timings = timings
        self.params: PirParams = timings.params
        self.memory_bandwidth = memory_bandwidth
        self.reduction_overlap = reduction_overlap
        self._ops: list[GraphOp] = []

    # -- low-level emit ------------------------------------------------------
    def _emit(self, cost: OpCost, deps: list[int]) -> int:
        op = GraphOp(op_id=len(self._ops), cost=cost, deps=list(deps))
        self._ops.append(op)
        return op.op_id

    def _mem(self, nbytes: float, deps: list[int], label: str) -> int:
        cycles = self.timings.dram_cycles(nbytes, self.memory_bandwidth)
        return self._emit(OpCost(Unit.MEMORY, cycles, label), deps)

    # -- high-level ops ----------------------------------------------------------
    def _emit_subs(self, deps: list[int]) -> int:
        """Subs: Auto(a,b) -> Dcp(a) -> ℓ NTTs -> evk GEMM -> combine."""
        t, p = self.timings, self.params
        auto = self._emit(t.automorphism(polys=2), deps)
        intt = self._emit(t.intt(polys=1), [auto])
        icrt = self._emit(t.icrt(polys=1), [intt])
        ell = p.gadget_len
        # With R.O. the digit NTTs stream into the GEMM just-in-time; the
        # unit occupancy is identical either way (R.O. affects the working
        # set, which the scheduler already modeled), so one chain suffices.
        ntts = self._emit(t.ntt(polys=ell), [icrt])
        gemm = self._emit(t.gadget_gemm(ell, out_polys=2), [ntts])
        combine = self._emit(t.ct_add(num=2), [gemm])  # even/odd outputs
        return combine

    def _emit_cmux(self, deps: list[int]) -> int:
        """cmux: (Y - X) -> Dcp(a, b) -> 2ℓ NTTs -> RGSW GEMM -> + X."""
        t, p = self.timings, self.params
        diff = self._emit(t.ct_add(num=1), deps)
        intt = self._emit(t.intt(polys=2), [diff])
        icrt = self._emit(t.icrt(polys=2), [intt])
        ell = p.gadget_len
        ntts = self._emit(t.ntt(polys=2 * ell), [icrt])
        gemm = self._emit(t.gadget_gemm(2 * ell, out_polys=2), [ntts])
        accum = self._emit(t.ct_add(num=1), [gemm])
        return accum

    # -- schedule expansion --------------------------------------------------------
    def build(self, schedule: Schedule) -> OpGraph:
        """Expand every schedule step; memory ops depend only on issue order.

        The decoupled data orchestration (Section VI-A) prefetches loads
        independently of compute, so a load op depends only on the previous
        memory op (channel ordering), while the compute chain of step i
        depends on both its loads and the previous step's compute tail.
        """
        self._ops = []
        last_load: list[int] = []
        for step in schedule.steps:
            load_deps = []
            if step.key_load:
                last_load = [self._mem(schedule.key_bytes, last_load, "key-load")]
                load_deps.extend(last_load)
            if step.ct_loads:
                last_load = [
                    self._mem(step.ct_loads * schedule.ct_bytes, last_load, "ct-load")
                ]
                load_deps.extend(last_load)
            # Steps from different subtrees are independent; the shared
            # functional units serialize them, which the resource-aware
            # scheduler models.  (The strictly serial root path is d
            # node-latencies long — negligible against throughput limits.)
            if step.kind is StepKind.CMUX:
                tail = self._emit_cmux(load_deps)
            else:
                tail = self._emit_subs(load_deps)
            if step.ct_stores:
                # Stores ride the same channel (occupancy) but are
                # write-buffered: they depend on their producer only and
                # never gate later prefetches (decoupled orchestration).
                self._mem(step.ct_stores * schedule.ct_bytes, [tail], "ct-store")
        return OpGraph(self._ops)
