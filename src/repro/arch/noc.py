"""Network-on-chip layout transposition (Section IV-E, Fig. 10).

The two parallelization strategies distribute data differently:

* QLP (ExpandQuery/ColTor): core c holds ALL coefficients of its queries.
* CLP (RowSel): core c holds one coefficient slice of ALL queries.

Moving between them is a (queries x coefficients) transpose performed in
two phases: a *local* transpose inside each core over (block x block)
tiles with block = lanes/cores (Fig. 10-2), then a *global* exchange in
which lane-group g of core c travels to lane-group c of core g over a
fixed point-to-point wire (Fig. 10-3).  Because each lane connects to
exactly one lane of one other core, the wiring cost grows only linearly
with core count.

``qlp_to_clp`` implements the permutation functionally — tests verify that
the fixed wiring really produces the CLP layout — and ``transpose_cost``
is the timing the simulator charges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import IveConfig
from repro.errors import ParameterError


@dataclass(frozen=True)
class NocGeometry:
    """Cores and lanes participating in a transposition."""

    num_cores: int
    num_lanes: int

    def __post_init__(self):
        if self.num_lanes % self.num_cores:
            raise ParameterError(
                f"lanes ({self.num_lanes}) must be a multiple of cores "
                f"({self.num_cores}) for the blocked transpose"
            )

    @property
    def block(self) -> int:
        """Tile edge: lanes/cores (Fig. 10's data-block size)."""
        return self.num_lanes // self.num_cores


def _check(layout: np.ndarray, geo: NocGeometry) -> None:
    if layout.ndim != 3:
        raise ParameterError("layout must be (cores, rows, lanes)")
    cores, rows, lanes = layout.shape
    if cores != geo.num_cores or lanes != geo.num_lanes:
        raise ParameterError("layout does not match the NoC geometry")
    if rows % geo.block:
        raise ParameterError(f"row count {rows} not divisible by block {geo.block}")


def local_transpose(layout: np.ndarray, geo: NocGeometry) -> np.ndarray:
    """Phase 1 (Fig. 10-2): each core transposes its (block x block) tiles.

    Purely core-local — no inter-core traffic.  ``layout`` has shape
    (cores, rows, lanes); rows are consecutive data beats (one query's
    coefficient vector per row under QLP).
    """
    _check(layout, geo)
    cores, rows, lanes = layout.shape
    b = geo.block
    tiles = layout.reshape(cores, rows // b, b, lanes // b, b)
    return np.swapaxes(tiles, 2, 4).reshape(cores, rows, lanes)


def global_exchange(layout: np.ndarray, geo: NocGeometry) -> np.ndarray:
    """Phase 2 (Fig. 10-3): fixed-wire exchange of lane groups.

    Lane-group g of core c moves to lane-group c of core g — the core axis
    swaps with the lane-group axis.  Each lane talks to exactly one lane
    in one other core, so fixed wiring suffices.
    """
    _check(layout, geo)
    cores, rows, lanes = layout.shape
    grouped = layout.reshape(cores, rows, cores, geo.block)
    return np.swapaxes(grouped, 0, 2).reshape(cores, rows, lanes)


def qlp_to_clp(layout: np.ndarray, geo: NocGeometry) -> np.ndarray:
    """Full QLP -> CLP transition: local transpose then global exchange.

    For input ``layout[c, r, l] = f(query = c*rows + r', coeff = l)`` the
    output places coefficient ``c'*block + i`` of every query on core c'
    — the CLP distribution RowSel needs (verified in tests).
    """
    return global_exchange(local_transpose(layout, geo), geo)


def clp_to_qlp(layout: np.ndarray, geo: NocGeometry) -> np.ndarray:
    """The reverse transition (RowSel outputs -> ColTor): same two phases
    applied in reverse order (both phases are involutions)."""
    return local_transpose(global_exchange(layout, geo), geo)


@dataclass(frozen=True)
class TransposeCost:
    """Cycles for one full QLP<->CLP layout change."""

    local_cycles: float
    global_cycles: float

    @property
    def total_cycles(self) -> float:
        return self.local_cycles + self.global_cycles


def transpose_cost(config: IveConfig, total_bytes: float) -> TransposeCost:
    """Timing: local phase bounded by lane width, global by the fixed wires.

    Per-core time is constant for a fixed per-core data share; aggregate
    wiring grows linearly with core count (Section IV-E).
    """
    per_core = total_bytes / config.num_cores
    local = per_core / config.lanes
    global_ = per_core / config.noc_bytes_per_cycle_per_core
    return TransposeCost(local_cycles=local, global_cycles=global_)
