"""On-chip SRAM bandwidth accounting (Section VI-A / IV-F).

The RF feeds every functional unit; the paper sizes its interleaved banks
at 2.04 TB/s per core so that SRAM never becomes the limiter.  This module
estimates the RF bytes each high-level operation moves and verifies the
design claim: at full unit utilization, RF traffic stays below the port
bandwidth (tests assert it for every step).  The EWU's forwarding path
from the sysNTTUs (reduction overlapping) bypasses the RF, which is the
paper's stated reason for adding it — modeled as a discount on the GEMM
read traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import IveConfig
from repro.params import PirParams
from repro.sched.tree import StepKind


@dataclass(frozen=True)
class SramTraffic:
    """Bytes moved through the core's SRAM structures per operation."""

    rf_bytes: float
    icrt_buffer_bytes: float
    db_buffer_bytes: float


def node_sram_traffic(
    params: PirParams, kind: StepKind, reduction_overlap: bool = True
) -> SramTraffic:
    """RF/buffer traffic of one tree node (Subs or cmux).

    Counted per Fig. 9's datapaths: operands stream RF -> unit -> RF except
    (a) iNTT results land in the iCRT buffer, and (b) with reduction
    overlapping the digit-NTT outputs forward straight into the EWU/GEMM
    instead of bouncing through the RF.
    """
    poly = params.poly_bytes
    ell = params.gadget_len
    if kind is StepKind.CMUX:
        operands = 3 * 2 * poly  # read X, Y; write difference (ct = 2 polys)
        intt_read = 2 * poly
        digits = 2 * ell * poly
        key_read = 4 * ell * poly  # RGSW rows
        output = 2 * poly + 2 * 2 * poly  # GEMM result + final accumulate
    else:
        operands = 2 * 2 * poly  # read ct, write automorphed pair
        intt_read = 1 * poly
        digits = ell * poly
        key_read = 2 * ell * poly  # evk rows
        output = 2 * poly + 2 * 2 * poly
    icrt_buffer = intt_read + digits  # iNTT results in, digit polys out
    forward_discount = digits if reduction_overlap else 0.0
    rf = operands + intt_read + digits * 2 + key_read + output - forward_discount
    return SramTraffic(
        rf_bytes=rf, icrt_buffer_bytes=icrt_buffer, db_buffer_bytes=0.0
    )


def rowsel_db_buffer_bytes_per_cycle(config: IveConfig, params: PirParams) -> float:
    """DB-buffer read rate sustaining the RowSel GEMM at full tilt.

    The DB matrix streams horizontally through the output-stationary
    systolic array (Fig. 9, pink path), so each fetched residue word is
    reused by every column it passes — ``sysnttu_array_cols`` MACs per
    word.  The buffer must source macs/cycle divided by that reuse.
    """
    from repro.params import RESIDUE_BITS

    reuse = config.sysnttu_array_cols
    return config.gemm_macs_per_core / reuse * RESIDUE_BITS / 8.0


def step_rf_demand_fraction(
    config: IveConfig,
    params: PirParams,
    kind: StepKind,
    node_cycles: float,
    reduction_overlap: bool = True,
) -> float:
    """RF bandwidth demand of one node relative to the port bandwidth.

    < 1.0 means the RF keeps up with the functional units (the design
    intent); > 1.0 would make SRAM the bottleneck.
    """
    traffic = node_sram_traffic(params, kind, reduction_overlap)
    seconds = node_cycles / config.clock_hz
    demand = traffic.rf_bytes / seconds
    return demand / config.rf_bandwidth
