"""Peak-power model calibrated to Table II, mirroring the area model.

Peak watts per component at full utilization; the energy model multiplies
these by simulated busy times (the paper: "estimated IVE's total energy
consumption based on each component's utilization").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import MB, IveConfig

# --- Table II anchors (W, full IVE) ---------------------------------------
TABLE2_POWER = {
    "sysNTTU": 2.17,  # per core, both units
    "iCRTU": 0.13,
    "EWU": 0.37,
    "AutoU": 0.11,
    "RF & buffers": 1.63,
    "other": 0.71,
}
TABLE2_CORE_TOTAL = 5.12
TABLE2_NOC = 6.7
TABLE2_HBM = 68.6
TABLE2_TOTAL = 239.1

#: Unified sysNTTU pays extra switching energy for the dual datapath
#: (Section VI-C: "energy consumption increases by 1.1x").
UNIFIED_ENERGY_FACTOR = 1.1
_NTT_ONLY_PAIR = TABLE2_POWER["sysNTTU"] / UNIFIED_ENERGY_FACTOR * 0.82
_DEDICATED_GEMM_PAIR = TABLE2_POWER["sysNTTU"] / UNIFIED_ENERGY_FACTOR * 0.18
_GENERIC_PRIME_FACTOR = 1.13  # mirrors the area calibration (+Sp: -4%)
_SRAM_W_PER_MB = TABLE2_POWER["RF & buffers"] / 4.875
_MADU_POWER = TABLE2_POWER["EWU"]


@dataclass(frozen=True)
class PowerBreakdown:
    """Peak W by component."""

    per_core: dict
    core_total: float
    cores_total: float
    noc: float
    hbm: float

    @property
    def total(self) -> float:
        return self.cores_total + self.noc + self.hbm

    def unit_power(self, unit_name: str) -> float:
        """Per-core peak power of the unit executing a simulator resource."""
        aliases = {
            "sysnttu": ("sysNTTU", "NTTU", "GEMM unit"),
            "icrtu": ("iCRTU",),
            "ewu": ("EWU", "MADU"),
            "autou": ("AutoU",),
        }
        names = aliases.get(unit_name, (unit_name,))
        return sum(self.per_core.get(n, 0.0) for n in names)


def power(config: IveConfig) -> PowerBreakdown:
    """Component-level peak power for any design point."""
    mult_factor = 1.0 if config.special_primes else _GENERIC_PRIME_FACTOR
    per_core: dict[str, float] = {}

    pair_scale = config.sysnttu_per_core / 2.0
    if config.unified_sysnttu:
        per_core["sysNTTU"] = TABLE2_POWER["sysNTTU"] * pair_scale * mult_factor
    else:
        per_core["NTTU"] = _NTT_ONLY_PAIR * pair_scale * mult_factor
        if not config.gemm_on_madu:
            per_core["GEMM unit"] = _DEDICATED_GEMM_PAIR * pair_scale * mult_factor
    if config.gemm_on_madu:
        per_core["MADU"] = 2 * _MADU_POWER * mult_factor

    per_core["iCRTU"] = TABLE2_POWER["iCRTU"] * mult_factor
    per_core["EWU"] = TABLE2_POWER["EWU"] * mult_factor
    per_core["AutoU"] = TABLE2_POWER["AutoU"]
    per_core["RF & buffers"] = _SRAM_W_PER_MB * (config.sram_per_core / MB)
    per_core["other"] = TABLE2_POWER["other"]

    core_total = sum(per_core.values())
    return PowerBreakdown(
        per_core=per_core,
        core_total=core_total,
        cores_total=core_total * config.num_cores,
        noc=TABLE2_NOC * config.num_cores / 32.0,
        hbm=TABLE2_HBM * config.memory.hbm_stacks / 4.0,
    )
