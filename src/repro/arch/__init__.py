"""IVE accelerator model: configuration, cycle simulator, area/power/energy.

This package is the paper's primary contribution rebuilt in Python: the
32-core accelerator with versatile sysNTTUs (Section IV), the cycle-level
performance simulator (Section VI-A methodology), and the Table II cost
models with every ablation design point (Base / +Sp / +SysNTTU / ARK-like).
"""

from repro.arch.area import AreaBreakdown, area
from repro.arch.config import GB, KB, MB, IveConfig, MemoryConfig
from repro.arch.energy import (
    EnergyBreakdown,
    batch_energy,
    edap,
    edap_ratio,
    efficiency_summary,
    energy_per_query,
    total_dram_bytes,
)
from repro.arch.opgraph import GraphBuilder, GraphOp, OpGraph
from repro.arch.power import PowerBreakdown, power
from repro.arch.simulator import IveSimulator, PirLatency, StepTiming, simulate_graph
from repro.arch.units import OpCost, Unit, UnitTimings

__all__ = [
    "GB",
    "KB",
    "MB",
    "AreaBreakdown",
    "EnergyBreakdown",
    "GraphBuilder",
    "GraphOp",
    "IveConfig",
    "IveSimulator",
    "MemoryConfig",
    "OpCost",
    "OpGraph",
    "PirLatency",
    "PowerBreakdown",
    "StepTiming",
    "Unit",
    "UnitTimings",
    "area",
    "batch_energy",
    "edap",
    "edap_ratio",
    "efficiency_summary",
    "energy_per_query",
    "power",
    "simulate_graph",
    "total_dram_bytes",
]
