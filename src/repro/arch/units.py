"""Per-operation timing of IVE's functional units (Section IV-B/C/F).

All costs are occupancy cycles on the owning unit for one operation over a
full RNS polynomial (R residue polynomials of degree N).  The fully
pipelined units sustain ``lanes`` elements per cycle, so streaming one
residue polynomial takes N/lanes cycles; pipeline fill latency is a small
constant that the event simulator adds to the completion (not occupancy)
time.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.arch.config import IveConfig
from repro.params import PirParams

#: Pipeline fill latency added to an op's completion time (cycles).
PIPELINE_FILL = 40


class Unit(enum.Enum):
    """Execution resources inside one IVE core."""

    SYSNTTU = "sysnttu"  # (i)NTT mode and GEMM mode
    ICRTU = "icrtu"
    EWU = "ewu"
    AUTOU = "autou"
    MEMORY = "memory"  # the core's statically mapped HBM/LPDDR channel


@dataclass(frozen=True)
class OpCost:
    """Occupancy of one primitive operation."""

    unit: Unit
    cycles: float
    label: str = ""


class UnitTimings:
    """Cycle costs for one (config, params) pair."""

    def __init__(self, config: IveConfig, params: PirParams):
        self.config = config
        self.params = params
        if params.n % config.lanes:
            raise ValueError(f"N={params.n} not divisible by {config.lanes} lanes")

    # -- NTT ---------------------------------------------------------------
    def ntt_poly_cycles(self) -> float:
        """One (i)NTT over a full RNS polynomial on the core's NTT engines.

        Each sysNTTU performs sqrt(N)/2*logN butterflies per cycle; a full
        N-point NTT needs (N/2)*logN butterflies, i.e. N/lanes cycles per
        residue polynomial times R residues on one unit.  The simulator
        models the core's ``sysnttu_per_core`` units as one double-width
        resource, so the occupancy divides across them (independent
        residue polynomials keep both units busy).
        """
        butterflies = (
            self.params.rns_count * (self.params.n / 2.0) * math.log2(self.params.n)
        )
        return butterflies / self.config.ntt_butterflies_per_core

    def ntt(self, polys: int = 1) -> OpCost:
        return OpCost(Unit.SYSNTTU, polys * self.ntt_poly_cycles(), "ntt")

    def intt(self, polys: int = 1) -> OpCost:
        return OpCost(Unit.SYSNTTU, polys * self.ntt_poly_cycles(), "intt")

    # -- GEMM ---------------------------------------------------------------
    def gemm_cycles(self, macs: float) -> float:
        """Modular multiply-accumulates on the core's GEMM resource."""
        return macs / self.config.gemm_macs_per_core

    def gemm(self, macs: float, label: str = "gemm") -> OpCost:
        unit = Unit.EWU if self.config.gemm_on_madu else Unit.SYSNTTU
        return OpCost(unit, self.gemm_cycles(macs), label)

    def gadget_gemm(self, num_digits: int, out_polys: int) -> OpCost:
        """evk/RGSW matrix times digit vector: digits * outputs * R * N MACs."""
        macs = num_digits * out_polys * self.params.rns_count * self.params.n
        return self.gemm(macs, "gadget-gemm")

    # -- iCRT ------------------------------------------------------------------
    def icrt(self, polys: int = 1) -> OpCost:
        """RNS reconstruction + bit extraction on the iCRTU (Fig. 9 right).

        Each of the sqrt(N) cells handles one coefficient at a time: R
        accumulation cycles plus ℓ extraction cycles per coefficient.
        """
        per_coeff = self.params.rns_count + self.params.gadget_len
        cycles = polys * self.params.n * per_coeff / self.config.icrtu_cells
        return OpCost(Unit.ICRTU, cycles, "icrt")

    # -- element-wise -------------------------------------------------------------
    def elementwise(self, ops: float, label: str = "elem") -> OpCost:
        """Adds/subs/MMADs on the EWU: sqrt(N) lanes."""
        return OpCost(Unit.EWU, ops / self.config.ewu_macs, label)

    def ct_add(self, num: int = 1) -> OpCost:
        """Ciphertext add/sub: 2 polys, R*N residue ops each."""
        return self.elementwise(num * 2 * self.params.rns_count * self.params.n, "ct-add")

    # -- automorphism -----------------------------------------------------------
    def automorphism(self, polys: int = 2) -> OpCost:
        """Coefficient permutation on the AutoU (fully pipelined, ARK design)."""
        cycles = polys * self.params.rns_count * self.params.n / self.config.lanes
        return OpCost(Unit.AUTOU, cycles, "auto")

    # -- memory -------------------------------------------------------------------
    def dram_cycles(self, nbytes: float, bandwidth_bytes_per_s: float) -> float:
        """Cycles to move ``nbytes`` at the given channel bandwidth."""
        seconds = nbytes / bandwidth_bytes_per_s
        return seconds * self.config.clock_hz
