"""Closed-form performance model, cross-validated against the cycle sim.

For large sweeps (cluster sizing, design-space exploration) a closed form
is handy: each pipeline step is the max of its per-unit occupancy totals
(the steady-state bound of a deeply pipelined machine) plus the DRAM time
of the schedule's traffic.  Tests assert agreement with the event-driven
simulator within a tolerance — if the two models drift, one of them is
wrong about the machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import IveConfig
from repro.arch.units import Unit, UnitTimings
from repro.params import PirParams
from repro.sched.traversal import schedule_coltor, schedule_expand
from repro.sched.tree import Schedule, ScheduleConfig, StepKind, Traversal


@dataclass(frozen=True)
class AnalyticStep:
    """Per-unit occupancy (cycles) of one tree step for a single query."""

    unit_cycles: dict
    memory_cycles: float

    @property
    def bound_cycles(self) -> float:
        return max([self.memory_cycles, *self.unit_cycles.values()], default=0.0)


class AnalyticModel:
    """Closed-form step times for one (config, params) pair."""

    def __init__(
        self,
        config: IveConfig,
        params: PirParams,
        traversal: Traversal = Traversal.HS_DFS,
        reduction_overlap: bool = True,
        db_bandwidth: float | None = None,
    ):
        self.config = config
        self.params = params
        self.timings = UnitTimings(config, params)
        self.traversal = traversal
        self.reduction_overlap = reduction_overlap
        self.db_bandwidth = (
            db_bandwidth if db_bandwidth is not None else config.memory.hbm_bandwidth
        )
        self._cfg = ScheduleConfig(
            capacity_bytes=config.rf_bytes,
            traversal=traversal,
            reduction_overlap=reduction_overlap,
        )

    # -- per-node unit occupancy -----------------------------------------
    def _node_cycles(self, kind: StepKind) -> dict:
        t, p = self.timings, self.params
        ell = p.gadget_len
        if kind is StepKind.CMUX:
            ntt_polys = 2 + 2 * ell
            gemm = t.gadget_gemm(2 * ell, out_polys=2)
            icrt = t.icrt(polys=2)
            elem = t.ct_add(num=2)
            auto = 0.0
        else:
            ntt_polys = 1 + ell
            gemm = t.gadget_gemm(ell, out_polys=2)
            icrt = t.icrt(polys=1)
            elem = t.ct_add(num=2)
            auto = t.automorphism(polys=2).cycles
        # ntt_poly_cycles already spreads across the per-core sysNTTUs.
        ntt = ntt_polys * t.ntt_poly_cycles()
        cycles = {
            Unit.SYSNTTU: ntt,
            Unit.ICRTU: icrt.cycles,
            Unit.EWU: elem.cycles,
            Unit.AUTOU: auto,
        }
        cycles[gemm.unit] = cycles.get(gemm.unit, 0.0) + gemm.cycles
        return cycles

    def _step_bound(self, schedule: Schedule, kind: StepKind) -> AnalyticStep:
        nodes = schedule.num_compute_steps
        per_node = self._node_cycles(kind)
        unit_cycles = {u: c * nodes for u, c in per_node.items()}
        mem_bytes = schedule.traffic().total_bytes
        mem_cycles = self.timings.dram_cycles(
            mem_bytes, self.config.per_core_hbm_bandwidth
        )
        return AnalyticStep(unit_cycles=unit_cycles, memory_cycles=mem_cycles)

    # -- public step times ----------------------------------------------------
    def expand_step(self) -> AnalyticStep:
        return self._step_bound(schedule_expand(self.params, self._cfg), StepKind.EXPAND)

    def coltor_step(self) -> AnalyticStep:
        return self._step_bound(schedule_coltor(self.params, self._cfg), StepKind.CMUX)

    def expand_seconds(self, batch: int) -> float:
        rounds = math.ceil(batch / self.config.num_cores)
        return rounds * self.expand_step().bound_cycles / self.config.clock_hz

    def coltor_seconds(self, batch: int) -> float:
        rounds = math.ceil(batch / self.config.num_cores)
        return rounds * self.coltor_step().bound_cycles / self.config.clock_hz

    def rowsel_seconds(self, batch: int) -> float:
        p, c = self.params, self.config
        db_bytes = p.num_db_polys * p.poly_bytes
        stream_s = db_bytes / self.db_bandwidth
        macs = batch * 2.0 * p.num_db_polys * p.rns_count * p.n
        gemm_s = macs / (c.chip_gemm_macs_per_cycle * c.clock_hz)
        ct_bytes = batch * (p.d0 + (p.num_db_polys // p.d0)) * p.ct_bytes
        ct_s = ct_bytes / c.memory.hbm_bandwidth
        if self.db_bandwidth == c.memory.hbm_bandwidth:
            return max(gemm_s, stream_s + ct_s)
        return max(gemm_s, stream_s, ct_s)

    def total_seconds(self, batch: int) -> float:
        from repro.arch.simulator import TIMING_OVERHEAD

        return TIMING_OVERHEAD * (
            self.expand_seconds(batch)
            + self.rowsel_seconds(batch)
            + self.coltor_seconds(batch)
        )

    def qps(self, batch: int) -> float:
        return batch / self.total_seconds(batch)
