"""Batch PIR server and end-to-end protocol harness.

The server runs the standard ExpandQuery -> RowSel -> ColTor pipeline once
per bucket per round — each against that bucket's small preprocessed
database.  One full batch pass therefore scans ``replication_factor * D``
polynomials in total (independent of k), versus ``k * D`` for k separate
single-query retrievals: the amortization that makes multi-record
workloads (contact discovery, feed assembly, CT auditing) affordable.

``BatchPirProtocol`` mirrors :class:`repro.pir.protocol.PirProtocol` for
the batched flow and keeps the same communication transcript accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.batchpir.client import (
    BatchPirClient,
    BatchPlan,
    BatchQuery,
    BatchResponse,
)
from repro.batchpir.hashing import CuckooConfig
from repro.batchpir.layout import BatchDatabase, BatchLayout
from repro.errors import ParameterError
from repro.he.backend import ComputeBackend
from repro.params import PirParams
from repro.pir.client import ClientSetup
from repro.pir.database import PirDatabase
from repro.pir.protocol import Transcript
from repro.pir.server import PirServer


class BatchPirServer:
    """One PirServer per bucket, sharing the client's evaluation keys.

    ``backend`` selects the compute backend for every bucket server
    (the registry default when unset); the per-poly oracle stays
    reachable through ``PirServer.answer_reference``.
    """

    def __init__(
        self,
        db: BatchDatabase,
        ring,
        setup: ClientSetup,
        backend: str | ComputeBackend | None = None,
    ):
        self.layout = db.layout
        self.db = db
        self.servers = [
            PirServer(bucket_db.preprocess(ring, backend=backend), setup,
                      backend=backend)
            for bucket_db in db.bucket_dbs
        ]

    def answer(self, query: BatchQuery) -> BatchResponse:
        """One per-bucket pipeline per query; rounds run back to back."""
        rounds = []
        for queries in query.rounds:
            if len(queries) != self.layout.num_buckets:
                raise ParameterError(
                    f"batch round has {len(queries)} queries, layout has "
                    f"{self.layout.num_buckets} buckets"
                )
            rounds.append(
                [server.answer(q) for server, q in zip(self.servers, queries)]
            )
        return BatchResponse(rounds=rounds)


@dataclass
class BatchRetrievalResult:
    """Returned by :meth:`BatchPirProtocol.retrieve_batch`."""

    records: list[bytes]
    plan: BatchPlan
    num_rounds: int


class BatchPirProtocol:
    """A batch client/server pair over one logical record set."""

    def __init__(
        self,
        params: PirParams,
        records: list[bytes],
        max_batch: int,
        record_bytes: int | None = None,
        hash_seed: int = 0,
        seed: int | None = None,
        config: CuckooConfig | None = None,
        backend: str | ComputeBackend | None = None,
    ):
        size = record_bytes if record_bytes is not None else len(records[0])
        self.config = (
            config
            if config is not None
            else CuckooConfig.for_batch(max_batch, seed=hash_seed)
        )
        self.layout = BatchLayout.build(params, len(records), size, self.config)
        self.db = BatchDatabase(self.layout, records)
        self.client = BatchPirClient(self.layout, seed=seed)
        setup = self.client.setup_message()
        self.server = BatchPirServer(
            self.db, self.client.pir.ring, setup, backend=backend
        )
        self.transcript = Transcript(
            setup_bytes=setup.size_bytes(self.layout.bucket_params)
        )

    @classmethod
    def over_database(
        cls, db: PirDatabase, max_batch: int, hash_seed: int = 0, seed: int | None = None
    ) -> "BatchPirProtocol":
        """Re-bucket an existing single-query database for batched serving."""
        records = [db.record(i) for i in range(db.num_records)]
        return cls(
            db.params,
            records,
            max_batch,
            record_bytes=db.layout.record_bytes,
            hash_seed=hash_seed,
            seed=seed,
        )

    def retrieve_batch(self, indices: list[int]) -> BatchRetrievalResult:
        """Full round trip: plan, encrypt, answer per bucket, decode."""
        plan = self.client.plan(indices)
        query = self.client.build_queries(plan)
        response = self.server.answer(query)
        decoded = self.client.decode(plan, response)
        params = self.layout.bucket_params
        self.transcript.query_bytes += query.size_bytes(params)
        self.transcript.response_bytes += response.size_bytes(params)
        self.transcript.queries_served += len(indices)
        return BatchRetrievalResult(
            records=[decoded[int(g)] for g in indices],
            plan=plan,
            num_rounds=plan.num_rounds,
        )
