"""Batch PIR client: cuckoo planning, per-bucket queries, reassembly.

``plan`` maps k wanted indices onto buckets so that each bucket serves at
most one of them; ``build_queries`` then emits exactly one PIR query per
bucket per round — a real query for the planned bucket, a dummy (an
encryption of slot 0, indistinguishable from any other query) for every
untouched bucket — so the server learns nothing about which buckets carry
real retrievals, or even how many.

Stash handling: keys the cuckoo walk could not place are served by extra
full-width rounds (every round again queries all buckets).  Each round
costs one amortized pass over the replicated bucket set; with the 1.5x
bucket provisioning the stash is empty almost always, and overflow beyond
the configured bound raises the typed
:class:`~repro.errors.BatchPlanError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.batchpir.hashing import cuckoo_assign
from repro.batchpir.layout import BatchLayout
from repro.errors import BatchPlanError, LayoutError, ParameterError
from repro.params import PirParams
from repro.pir.client import ClientSetup, PirClient, PirQuery, PirResponse


@dataclass(frozen=True)
class BatchPlan:
    """Client-secret placement of wanted indices; never sent to the server."""

    rounds: tuple[dict[int, int], ...]  # per round: bucket id -> global index

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def indices(self) -> list[int]:
        return [g for slots in self.rounds for g in slots.values()]


@dataclass
class BatchQuery:
    """What actually travels to the server: one query per bucket per round."""

    rounds: list[list[PirQuery]]

    def size_bytes(self, params: PirParams) -> int:
        return sum(q.size_bytes(params) for rnd in self.rounds for q in rnd)


@dataclass
class BatchResponse:
    """One PIR response per bucket per round."""

    rounds: list[list[PirResponse]]

    def size_bytes(self, params: PirParams) -> int:
        return sum(r.size_bytes(params) for rnd in self.rounds for r in rnd)


class BatchPirClient:
    """Plans, encrypts, and decodes multi-record retrievals."""

    def __init__(self, layout: BatchLayout, seed: int | None = None):
        self.layout = layout
        self.pir = PirClient(layout.bucket_params, seed=seed)

    def setup_message(self) -> ClientSetup:
        """Evaluation keys, valid for every bucket (shared geometry)."""
        return self.pir.setup_message()

    # -- planning ---------------------------------------------------------
    def plan(self, indices: list[int]) -> BatchPlan:
        """Cuckoo-place the wanted indices; stash spills into extra rounds."""
        indices = [int(g) for g in indices]
        if not indices:
            raise ParameterError("batch retrieval needs at least one index")
        for g in indices:
            if not 0 <= g < self.layout.num_records:
                raise LayoutError(
                    f"record index {g} out of range [0, {self.layout.num_records})"
                )
        assignment = cuckoo_assign(indices, self.layout.config)
        rounds = [dict(assignment.slots)]
        leftover = list(assignment.stash)
        while leftover:
            slots: dict[int, int] = {}
            still: list[int] = []
            for key in leftover:
                free = [
                    b for b in self.layout.config.candidates(key) if b not in slots
                ]
                if free:
                    slots[free[0]] = key
                else:
                    still.append(key)
            if not slots:  # pragma: no cover — needs fully colliding candidates
                raise BatchPlanError("stash keys collide on every candidate bucket")
            rounds.append(slots)
            leftover = still
        return BatchPlan(rounds=tuple(rounds))

    # -- query construction -----------------------------------------------
    def build_queries(self, plan: BatchPlan) -> BatchQuery:
        rounds = []
        for slots in plan.rounds:
            queries = []
            for bucket in range(self.layout.num_buckets):
                if bucket in slots:
                    local = self.layout.local_index(bucket, slots[bucket])
                else:
                    local = 0  # dummy: any slot works, nothing is decoded
                queries.append(
                    self.pir.build_query(local, self.layout.bucket_layouts[bucket])
                )
            rounds.append(queries)
        return BatchQuery(rounds=rounds)

    # -- decoding ---------------------------------------------------------
    def decode(self, plan: BatchPlan, response: BatchResponse) -> dict[int, bytes]:
        """Decrypt the planned buckets' responses -> {global index: record}."""
        if len(response.rounds) != plan.num_rounds:
            raise ParameterError(
                f"response has {len(response.rounds)} rounds, plan has "
                f"{plan.num_rounds}"
            )
        records: dict[int, bytes] = {}
        for slots, responses in zip(plan.rounds, response.rounds):
            for bucket, g in slots.items():
                records[g] = self.pir.decode_response(
                    responses[bucket],
                    self.layout.local_index(bucket, g),
                    self.layout.bucket_layouts[bucket],
                )
        return records
