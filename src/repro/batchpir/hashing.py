"""3-way cuckoo hashing for multi-query batch PIR (the Pung/VBPIR scheme).

Batch PIR amortizes the server's database pass across a client's k wanted
records: the server replicates every record into each of its ``num_hashes``
candidate buckets, the client cuckoo-places its k indices so that every
bucket holds at most one wanted index, and one small PIR query runs per
bucket.  The hash functions must be identical on both sides, so candidates
are derived from a keyed blake2b over the record index — deterministic per
deployment via ``seed``, with no shared state beyond this config.

Cuckoo insertion uses the random-walk eviction strategy with a bounded
number of kicks; keys that still cannot be placed land in a bounded stash
(served by extra query rounds, see :mod:`repro.batchpir.client`).  With
``num_buckets >= 1.5 * k`` and three hash functions the stash is empty with
overwhelming probability (Kirsch-Mitzenmacher-Wieder).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import BatchPlanError, ParameterError

#: Bucket-to-key expansion factor: B = ceil(BUCKET_FACTOR * k).
BUCKET_FACTOR = 1.5

#: Record replication factor = number of candidate buckets per key.
DEFAULT_NUM_HASHES = 3


def num_buckets_for(max_batch: int, factor: float = BUCKET_FACTOR) -> int:
    """Bucket count for a design batch size (at least 2, ~1.5x keys)."""
    if max_batch < 1:
        raise ParameterError("design batch size must be at least 1")
    return max(2, math.ceil(factor * max_batch))


@dataclass(frozen=True)
class CuckooConfig:
    """Deployment-static hashing parameters shared by client and server."""

    num_buckets: int
    num_hashes: int = DEFAULT_NUM_HASHES
    stash_size: int = 4
    max_evictions: int = 128
    seed: int = 0

    def __post_init__(self):
        if self.num_buckets < 2:
            raise ParameterError("cuckoo hashing needs at least 2 buckets")
        if self.num_hashes < 2:
            raise ParameterError("cuckoo hashing needs at least 2 hash functions")
        if self.stash_size < 0:
            raise ParameterError("stash size cannot be negative")
        if self.max_evictions < 1:
            raise ParameterError("eviction bound must be at least 1")

    @classmethod
    def for_batch(cls, max_batch: int, seed: int = 0, **kwargs) -> "CuckooConfig":
        return cls(num_buckets=num_buckets_for(max_batch), seed=seed, **kwargs)

    @property
    def design_batch(self) -> int:
        """Largest key count this table is sized for (inverse of 1.5x rule)."""
        return max(1, int(self.num_buckets / BUCKET_FACTOR))

    def candidates(self, key: int) -> tuple[int, ...]:
        """The ``num_hashes`` candidate buckets of a record index.

        Keyed blake2b keeps the mapping deterministic across processes and
        Python versions (``hash()`` is salted per interpreter run).
        Candidates may collide for small bucket counts; insertion handles
        duplicate candidates gracefully.
        """
        if key < 0:
            raise ParameterError("record indices must be non-negative")
        out = []
        for i in range(self.num_hashes):
            h = hashlib.blake2b(
                key.to_bytes(8, "little"),
                digest_size=8,
                key=self.seed.to_bytes(8, "little") + bytes([i]),
            )
            out.append(int.from_bytes(h.digest(), "little") % self.num_buckets)
        return tuple(out)


@dataclass(frozen=True)
class CuckooAssignment:
    """Result of placing one batch of keys: slot per bucket + stash."""

    slots: dict[int, int]  # bucket id -> key
    stash: tuple[int, ...]

    @property
    def placed(self) -> int:
        return len(self.slots)


def cuckoo_assign(keys: list[int], config: CuckooConfig) -> CuckooAssignment:
    """Place distinct keys so each bucket holds at most one.

    Random-walk eviction: when every candidate bucket of a key is taken, a
    uniformly chosen victim among them is kicked out and re-inserted.  The
    walk is bounded by ``max_evictions``; a key whose walk exhausts the
    bound goes to the stash.  Raises :class:`BatchPlanError` when the stash
    bound is exceeded — the typed failure callers can catch to split the
    batch.
    """
    if len(set(keys)) != len(keys):
        raise ParameterError("batch indices must be distinct")
    if len(keys) > config.num_buckets + config.stash_size:
        raise BatchPlanError(
            f"{len(keys)} keys cannot fit in {config.num_buckets} buckets "
            f"plus a stash of {config.stash_size}"
        )
    rng = np.random.default_rng(config.seed)
    slots: dict[int, int] = {}
    stash: list[int] = []
    for key in keys:
        current = key
        for _ in range(config.max_evictions):
            cands = config.candidates(current)
            free = [b for b in cands if b not in slots]
            if free:
                slots[free[0]] = current
                current = None
                break
            victim_bucket = cands[int(rng.integers(len(cands)))]
            current, slots[victim_bucket] = slots[victim_bucket], current
        if current is not None:
            stash.append(current)
            if len(stash) > config.stash_size:
                raise BatchPlanError(
                    f"cuckoo insertion of {len(keys)} keys into "
                    f"{config.num_buckets} buckets overflowed the stash bound "
                    f"of {config.stash_size}"
                )
    return CuckooAssignment(slots=slots, stash=tuple(stash))
