"""3-way cuckoo hashing for multi-query batch PIR (the Pung/VBPIR scheme).

Batch PIR amortizes the server's database pass across a client's k wanted
records: the server replicates every record into each of its ``num_hashes``
candidate buckets, the client cuckoo-places its k indices so that every
bucket holds at most one wanted index, and one small PIR query runs per
bucket.

The cuckoo machinery itself lives in :mod:`repro.hashing.cuckoo` — it is
shared with the keyword-PIR slot placement in :mod:`repro.kvpir` — and is
re-exported here so existing batch-PIR callers keep their import path.
"""

from repro.hashing.cuckoo import (
    BUCKET_FACTOR,
    DEFAULT_NUM_HASHES,
    CuckooAssignment,
    CuckooConfig,
    cuckoo_assign,
    key_bytes,
    num_buckets_for,
)

__all__ = [
    "BUCKET_FACTOR",
    "DEFAULT_NUM_HASHES",
    "CuckooAssignment",
    "CuckooConfig",
    "cuckoo_assign",
    "key_bytes",
    "num_buckets_for",
]
