"""Bucketed database layout for batch PIR.

One logical record set is partitioned into ``num_buckets`` independent
per-bucket PIR databases: every record is replicated into each of its
cuckoo candidate buckets, so whichever bucket the client's plan assigns a
wanted index to can serve it.  All buckets share a single (much smaller)
database geometry — sized to the fullest bucket — so queries, evaluation
keys, and responses have one uniform shape and a dummy query for an
untouched bucket is indistinguishable from a real one.

The bucket membership is a pure function of ``(num_records, CuckooConfig)``,
so the client reconstructs the exact same layout locally from public
deployment parameters; only the server materializes the record bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.batchpir.hashing import CuckooConfig
from repro.errors import LayoutError, ParameterError
from repro.he.poly import RingContext
from repro.params import PirParams
from repro.pir.database import PirDatabase, PreprocessedDatabase
from repro.pir.layout import RecordLayout


def bucket_geometry(
    base: PirParams, bucket_records: int, record_bytes: int
) -> PirParams:
    """Smallest (D0, d) geometry on the base ring that holds one bucket.

    Scans power-of-two D0 candidates, minimizing first the stored
    polynomial count and then the per-query tree work
    ``(D0 - 1) Subs + (2^d - 1) external products`` — a balanced
    D0 ~ 2^d split, since ExpandQuery cost grows with D0 and ColTor cost
    with 2^d.  With a power-of-two plaintext modulus the payload per
    coefficient shrinks as D0 grows, so capacity is re-derived per
    candidate.
    """
    bucket_records = max(1, bucket_records)
    best: tuple[int, int, int, int] | None = None  # (capacity, tree ops, dims, d0)
    d0 = 1
    while d0 <= base.n:
        try:
            probe = base.with_db(d0=d0, num_dims=0)
            coeff_bytes = probe.payload_bits_per_coeff // 8
        except ParameterError:
            break  # larger D0 only shrinks the payload further
        if coeff_bytes < 1:
            break
        capacity_bytes = probe.n * coeff_bytes
        if record_bytes <= capacity_bytes:
            records_per_poly = max(1, capacity_bytes // record_bytes)
            planes = 1
        else:  # record striped across planes; one record per poly per plane
            records_per_poly = 1
            planes = math.ceil(record_bytes / capacity_bytes)
        polys = math.ceil(bucket_records / records_per_poly)
        dims = max(0, math.ceil(math.log2(polys / d0))) if polys > d0 else 0
        key = (planes * (d0 << dims), d0 + (1 << dims), dims, d0)
        if best is None or key < best:
            best = key
        d0 *= 2
    if best is None:
        raise LayoutError(
            f"no bucket geometry on N={base.n} carries {record_bytes}-byte records"
        )
    _, _, dims, d0 = best
    return base.with_db(d0=d0, num_dims=dims)


@dataclass
class BatchLayout:
    """Deterministic bucket partition both sides derive independently."""

    base_params: PirParams
    num_records: int
    record_bytes: int
    config: CuckooConfig
    bucket_members: list[list[int]] = field(repr=False)
    bucket_params: PirParams = field(repr=False)
    bucket_layouts: list[RecordLayout] = field(repr=False)
    _local: list[dict[int, int]] = field(repr=False)

    @classmethod
    def build(
        cls,
        params: PirParams,
        num_records: int,
        record_bytes: int,
        config: CuckooConfig,
    ) -> "BatchLayout":
        if num_records < 1:
            raise LayoutError("batch layout needs at least one record")
        members: list[set[int]] = [set() for _ in range(config.num_buckets)]
        for g in range(num_records):
            for bucket in config.candidates(g):
                members[bucket].add(g)
        bucket_members = [sorted(m) for m in members]
        max_records = max((len(m) for m in bucket_members), default=1)
        bucket_params = bucket_geometry(params, max_records, record_bytes)
        bucket_layouts = [
            RecordLayout(
                params=bucket_params,
                record_bytes=record_bytes,
                num_records=max(1, len(m)),
            )
            for m in bucket_members
        ]
        local = [{g: i for i, g in enumerate(m)} for m in bucket_members]
        return cls(
            base_params=params,
            num_records=num_records,
            record_bytes=record_bytes,
            config=config,
            bucket_members=bucket_members,
            bucket_params=bucket_params,
            bucket_layouts=bucket_layouts,
            _local=local,
        )

    # -- geometry ---------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        return self.config.num_buckets

    @property
    def replicated_records(self) -> int:
        """Total stored entries across buckets (~num_hashes * num_records)."""
        return sum(len(m) for m in self.bucket_members)

    @property
    def replication_factor(self) -> float:
        return self.replicated_records / self.num_records

    def local_index(self, bucket: int, global_index: int) -> int:
        """Position of a record inside one of its candidate buckets."""
        try:
            return self._local[bucket][global_index]
        except (IndexError, KeyError):
            raise LayoutError(
                f"record {global_index} is not stored in bucket {bucket}"
            ) from None


class BatchDatabase:
    """Server-side materialization: one PirDatabase per bucket."""

    def __init__(self, layout: BatchLayout, records: list[bytes]):
        if len(records) != layout.num_records:
            raise LayoutError(
                f"layout expects {layout.num_records} records, got {len(records)}"
            )
        self.layout = layout
        self._records = list(records)
        pad = b"\0" * layout.record_bytes
        self.bucket_dbs = [
            PirDatabase(
                layout.bucket_layouts[b],
                [records[g] for g in members] if members else [pad],
            )
            for b, members in enumerate(layout.bucket_members)
        ]

    @classmethod
    def from_records(
        cls,
        params: PirParams,
        records: list[bytes],
        config: CuckooConfig,
        record_bytes: int | None = None,
    ) -> "BatchDatabase":
        if not records:
            raise LayoutError("cannot build an empty batch database")
        size = record_bytes if record_bytes is not None else len(records[0])
        layout = BatchLayout.build(params, len(records), size, config)
        return cls(layout, records)

    @classmethod
    def random(
        cls,
        params: PirParams,
        num_records: int,
        record_bytes: int,
        config: CuckooConfig,
        seed: int | None = None,
    ) -> "BatchDatabase":
        rng = np.random.default_rng(seed)
        records = [rng.bytes(record_bytes) for _ in range(num_records)]
        return cls.from_records(params, records, config, record_bytes)

    def record(self, global_index: int) -> bytes:
        """Ground-truth record bytes (for verification in tests/examples)."""
        return self._records[global_index]

    @property
    def stored_records(self) -> int:
        return sum(db.num_records for db in self.bucket_dbs)

    def preprocess(self, ring: RingContext) -> list[PreprocessedDatabase]:
        return [db.preprocess(ring) for db in self.bucket_dbs]
