"""Batch PIR behind the serving runtime's dispatch windows.

A waiting-window batch in ``repro.serve`` normally shares one database
scan across queries that each still run their own pipeline.  This module
goes one step further: the queries of one dispatch window are coalesced
into a single cuckoo-batched pass — k distinct indices cost one pass over
the replicated bucket set instead of k scans.

The registry/backend pair mirrors ``RealShardRegistry``/
``RealCryptoBackend``: requests are routed by the same ``ShardMap``, each
shard is an independent batch-PIR deployment (own hash seed, own bucket
set), and the heavy crypto runs on a thread pool.  Because the cuckoo plan
must be built from the WHOLE window's index set, requests carry no
prebuilt query; the per-bucket queries are constructed at dispatch time
and the backend returns decoded record bytes.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.batchpir.client import BatchPirClient
from repro.batchpir.hashing import CuckooConfig
from repro.batchpir.layout import BatchDatabase, BatchLayout
from repro.batchpir.server import BatchPirServer
from repro.params import PirParams
from repro.serve.registry import ServeRequest, ShardMap


class BatchServeRegistry:
    """Per-shard batch-PIR deployments over one logical record set."""

    def __init__(
        self,
        params: PirParams,
        records: list[bytes],
        max_batch: int,
        num_shards: int = 1,
        record_bytes: int | None = None,
        hash_seed: int = 0,
        seed: int | None = None,
        backend: str | None = None,
    ):
        self.params = params
        self.max_batch = max_batch
        self.map = ShardMap(len(records), num_shards)
        self._records = list(records)
        size = record_bytes if record_bytes is not None else len(records[0])
        self._clients: list[BatchPirClient] = []
        self._servers: list[BatchPirServer] = []
        for shard_id in range(num_shards):
            start = self.map.starts[shard_id]
            shard_records = records[start : start + self.map.sizes[shard_id]]
            config = CuckooConfig.for_batch(max_batch, seed=hash_seed + shard_id)
            layout = BatchLayout.build(params, len(shard_records), size, config)
            db = BatchDatabase(layout, shard_records)
            client = BatchPirClient(layout, seed=seed)
            self._clients.append(client)
            self._servers.append(
                BatchPirServer(
                    db, client.pir.ring, client.setup_message(), backend=backend
                )
            )

    @classmethod
    def random(
        cls,
        params: PirParams,
        num_records: int,
        record_bytes: int,
        max_batch: int,
        num_shards: int = 1,
        seed: int | None = None,
        backend: str | None = None,
    ) -> "BatchServeRegistry":
        rng = np.random.default_rng(seed)
        records = [rng.bytes(record_bytes) for _ in range(num_records)]
        return cls(
            params, records, max_batch, num_shards, record_bytes, seed=seed,
            backend=backend,
        )

    @property
    def num_shards(self) -> int:
        return self.map.num_shards

    @property
    def num_records(self) -> int:
        return self.map.num_records

    def client(self, shard_id: int) -> BatchPirClient:
        return self._clients[shard_id]

    def server(self, shard_id: int) -> BatchPirServer:
        return self._servers[shard_id]

    def make_request(self, global_index: int) -> ServeRequest:
        """Route only — the batch query is planned per dispatch window."""
        shard_id, local = self.map.route(global_index)
        return ServeRequest(
            global_index=global_index, shard_id=shard_id, local_index=local
        )

    def decode(self, request: ServeRequest, response: bytes) -> bytes:
        """Symmetry with RealShardRegistry: responses arrive decoded."""
        return response

    def expected(self, global_index: int) -> bytes:
        """Ground-truth record bytes (for verification in tests/examples)."""
        return self._records[global_index]


class BatchCryptoBackend:
    """Coalesces each dispatch window into cuckoo-batched passes.

    The window's distinct shard-local indices are chunked to the
    deployment's design batch size and each chunk runs one
    plan -> encrypt -> per-bucket answer -> decode round trip; duplicate
    indices within a window share one retrieval.  Crypto runs on a thread
    pool so the event loop stays responsive, like ``RealCryptoBackend``.
    """

    def __init__(self, registry: BatchServeRegistry, max_workers: int | None = None):
        self.registry = registry
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="batchpir-worker"
        )

    def _serve_window(self, shard_id: int, locals_: list[int]) -> dict[int, bytes]:
        client = self.registry.client(shard_id)
        server = self.registry.server(shard_id)
        distinct = list(dict.fromkeys(locals_))
        records: dict[int, bytes] = {}
        step = self.registry.max_batch
        for at in range(0, len(distinct), step):
            chunk = distinct[at : at + step]
            plan = client.plan(chunk)
            response = server.answer(client.build_queries(plan))
            records.update(client.decode(plan, response))
        return records

    async def answer(self, shard_id: int, requests: list[ServeRequest]) -> list:
        loop = asyncio.get_running_loop()
        records = await loop.run_in_executor(
            self._pool,
            self._serve_window,
            shard_id,
            [r.local_index for r in requests],
        )
        return [records[r.local_index] for r in requests]

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)
