"""Amortized accelerator cost model for cuckoo-batched PIR.

Answers the deployment question the real-crypto path cannot (it only runs
at toy parameters): at paper scale, how much server time does one query
cost inside a k-batch versus standing alone?  The model reuses the IVE
cycle simulator on the derived bucket geometry — expand/tournament
schedules, the RowSel roofline, NoC and PCIe — via
:class:`~repro.systems.scale_up.BatchScaleUpSystem`, so the batch numbers
and the paper-reproduction numbers come from one code path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.batchpir.hashing import DEFAULT_NUM_HASHES, CuckooConfig, num_buckets_for
from repro.batchpir.layout import bucket_geometry
from repro.params import PirParams
from repro.systems.scale_up import BatchScaleUpSystem, ScaleUpSystem


def model_bucket_params(
    params: PirParams,
    k: int,
    record_bytes: int | None = None,
    num_hashes: int = DEFAULT_NUM_HASHES,
) -> tuple[CuckooConfig, PirParams]:
    """Deployment geometry for a design batch of k at paper scale.

    Uses the mean bucket occupancy (``num_hashes * D / B``); the real
    layout sizes buckets to the observed maximum, but the power-of-two
    geometry rounding already gives the same headroom at model scale.
    """
    config = CuckooConfig(num_buckets=num_buckets_for(k), num_hashes=num_hashes)
    records = params.num_db_polys
    size = record_bytes if record_bytes is not None else params.poly_payload_bytes
    mean_bucket = math.ceil(num_hashes * records / config.num_buckets)
    return config, bucket_geometry(params, mean_bucket, size)


@dataclass(frozen=True)
class BatchCostPoint:
    """Modeled cost of one design batch size k."""

    k: int
    num_buckets: int
    single_query_s: float
    batch_pass_s: float
    amortized_per_query_s: float
    placement: str
    replicated_db_bytes: int

    @property
    def speedup(self) -> float:
        """Amortization factor vs k independent single queries."""
        return self.single_query_s / self.amortized_per_query_s


def amortized_cost_curve(
    params: PirParams,
    ks: tuple[int, ...] = (4, 16, 64, 256),
    config=None,
) -> list[BatchCostPoint]:
    """Amortized per-query cost vs k (the benchmark's model half).

    The baseline is k INDEPENDENT single queries — each paying one full
    ExpandQuery + RowSel DB scan + ColTor at batch 1 — against one
    amortized batch pass over the replicated bucket set.
    """
    single = ScaleUpSystem(params, config).latency(1).total_s
    points = []
    for k in ks:
        cuckoo, bucket_params = model_bucket_params(params, k)
        system = BatchScaleUpSystem(bucket_params, cuckoo.num_buckets, config)
        pass_s = system.pass_latency().total_s
        points.append(
            BatchCostPoint(
                k=k,
                num_buckets=cuckoo.num_buckets,
                single_query_s=single,
                batch_pass_s=pass_s,
                amortized_per_query_s=pass_s / k,
                placement=system.placement.value,
                replicated_db_bytes=system.preprocessed_db_bytes,
            )
        )
    return points
