"""repro.batchpir — cuckoo-hashed multi-query batch PIR.

One client retrieves k records for roughly one amortized pass over the
(replicated) database instead of k full passes: records are bucketed by
3-way cuckoo hashing (``hashing``), each bucket is an independent small
PIR database sharing one geometry (``layout``), the client plans k wanted
indices onto buckets and pads the rest with dummies (``client``), and the
server runs the per-bucket ExpandQuery -> RowSel -> ColTor pipelines
(``server``).  ``model`` prices the amortization on the IVE accelerator at
paper scale; ``serving`` plugs batched passes into the ``repro.serve``
dispatch windows.
"""

from repro.batchpir.client import (
    BatchPirClient,
    BatchPlan,
    BatchQuery,
    BatchResponse,
)
from repro.batchpir.hashing import (
    CuckooAssignment,
    CuckooConfig,
    cuckoo_assign,
    num_buckets_for,
)
from repro.batchpir.layout import BatchDatabase, BatchLayout, bucket_geometry
from repro.batchpir.model import (
    BatchCostPoint,
    amortized_cost_curve,
    model_bucket_params,
)
from repro.batchpir.server import (
    BatchPirProtocol,
    BatchPirServer,
    BatchRetrievalResult,
)

__all__ = [
    "BatchCostPoint",
    "BatchDatabase",
    "BatchLayout",
    "BatchPirClient",
    "BatchPirProtocol",
    "BatchPirServer",
    "BatchPlan",
    "BatchQuery",
    "BatchResponse",
    "BatchRetrievalResult",
    "CuckooAssignment",
    "CuckooConfig",
    "amortized_cost_curve",
    "bucket_geometry",
    "cuckoo_assign",
    "model_bucket_params",
    "num_buckets_for",
]
