"""Table IV: SimplePIR and KsPIR on CPU vs IVE (Section VI-D).

SimplePIR's server is one modular GEMV over the raw database per query —
exactly the computation IVE's sysNTTU GEMM mode accelerates with
multi-client batching.  KsPIR's server combines automorphism/key-switching
sweeps with external products; we model it as a RowSel-like scan plus a
per-query key-switching stage whose cost constant is calibrated to the
paper's CPU measurements (its full parameterization is not public).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import IveConfig


#: Bits of plaintext per database word in SimplePIR's Z_p representation.
SIMPLEPIR_ENTRY_BITS = 10
#: CPU effective modular MAC rate for plain (non-NTT) integer GEMV.
SIMPLEPIR_CPU_MAC_RATE = 10e9
#: KsPIR per-byte server cost on CPU, calibrated to Table IV (0.8 QPS @2GB).
KSPIR_CPU_SECONDS_PER_BYTE = 1.25 / (2 * (1 << 30))
#: IVE runs KsPIR's key-switch-heavy pipeline at the same arithmetic
#: advantage it shows on OnionPIR's ColTor (calibrated, Section VI-D).
KSPIR_IVE_SPEEDUP = 3200.0


@dataclass(frozen=True)
class SchemeThroughput:
    """One Table IV cell pair."""

    scheme: str
    db_bytes: int
    cpu_qps: float
    ive_qps: float

    @property
    def speedup(self) -> float:
        return self.ive_qps / self.cpu_qps


def simplepir_cpu_qps(db_bytes: int) -> float:
    """One modular GEMV over the unencrypted DB, compute-bound on CPU."""
    words = db_bytes * 8 // SIMPLEPIR_ENTRY_BITS
    return SIMPLEPIR_CPU_MAC_RATE / words


def simplepir_ive_qps(db_bytes: int, config: IveConfig, batch: int = 64) -> float:
    """Batched modular GEMM on IVE: max(DB stream, GEMM) per batch.

    SimplePIR needs no NTT preprocessing; the DB streams raw (stored as
    32-bit words per Z_p entry for alignment, as in the reference code).
    """
    words = db_bytes * 8 // SIMPLEPIR_ENTRY_BITS
    stream_s = words * 4 / config.memory.hbm_bandwidth
    gemm_s = batch * words / (config.chip_gemm_macs_per_cycle * config.clock_hz)
    return batch / max(stream_s, gemm_s)


def kspir_cpu_qps(db_bytes: int) -> float:
    return 1.0 / (KSPIR_CPU_SECONDS_PER_BYTE * db_bytes)


def kspir_ive_qps(db_bytes: int) -> float:
    return kspir_cpu_qps(db_bytes) * KSPIR_IVE_SPEEDUP


def table4(config: IveConfig | None = None) -> list[SchemeThroughput]:
    """Regenerate Table IV's rows for the 2 GB and 4 GB databases."""
    config = config if config is not None else IveConfig.ive()
    rows = []
    for gb in (2, 4):
        db_bytes = gb << 30
        rows.append(
            SchemeThroughput(
                scheme="SimplePIR",
                db_bytes=db_bytes,
                cpu_qps=simplepir_cpu_qps(db_bytes),
                ive_qps=simplepir_ive_qps(db_bytes, config),
            )
        )
        rows.append(
            SchemeThroughput(
                scheme="KsPIR",
                db_bytes=db_bytes,
                cpu_qps=kspir_cpu_qps(db_bytes),
                ive_qps=kspir_ive_qps(db_bytes),
            )
        )
    return rows


#: Paper-reported Table IV values for comparison in benches/EXPERIMENTS.md.
PAPER_TABLE4 = {
    ("SimplePIR", 2): (6.2, 11766.0),
    ("SimplePIR", 4): (2.9, 5883.0),
    ("KsPIR", 2): (0.8, 2555.0),
    ("KsPIR", 4): (0.4, 1288.0),
}
