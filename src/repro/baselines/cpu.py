"""CPU baseline: OnionPIRv2 on a 32-core Xeon Max (Fig. 12, Table IV).

We cannot run the authors' Xeon Max 9460 + 1 TB DDR5 box, so the model
derives per-query time from the same integer-mult complexity model the
rest of the repo uses, bounded by DDR5 bandwidth for the full-DB scan.
The effective modular-mult rate is calibrated so the 2 GB point lands at
the CPU QPS implied by the paper's 687.6x gmean speedup claim (~6 QPS);
scaling with DB size then follows from the model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import complexity
from repro.params import PirParams

#: Effective modular multiplications per second across 32 cores with
#: AVX-512 (calibrated to the paper's CPU datapoints).
CPU_EFFECTIVE_MULT_RATE = 33e9
#: DDR5-4800, 8 channels.
CPU_MEM_BANDWIDTH = 307e9
#: Package + DRAM power under full load (RAPL-style accounting).
CPU_POWER_WATTS = 450.0


@dataclass(frozen=True)
class CpuModel:
    """Single-query (non-batched) OnionPIRv2 performance."""

    params: PirParams
    mult_rate: float = CPU_EFFECTIVE_MULT_RATE
    mem_bandwidth: float = CPU_MEM_BANDWIDTH
    power_watts: float = CPU_POWER_WATTS

    def single_query_latency(self) -> float:
        """max(compute, DB scan) for one query."""
        mults = complexity.total_mults(self.params)
        compute_s = mults / self.mult_rate
        db_bytes = self.params.num_db_polys * self.params.poly_bytes
        scan_s = db_bytes / self.mem_bandwidth
        return max(compute_s, scan_s)

    def qps(self) -> float:
        return 1.0 / self.single_query_latency()

    def energy_per_query(self) -> float:
        """Paper measurements: 72 / 107 / 176 J for 2 / 4 / 8 GB."""
        return self.power_watts * self.single_query_latency()
