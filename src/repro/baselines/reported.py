"""Published numbers from prior PIR acceleration work (Table III anchors).

These are the values the paper itself quotes ("‡ We used the reported
values in the paper"); they are comparison constants, not measurements of
this repository.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ReportedSystem:
    """One row of Table III's prior-work columns."""

    name: str
    server_config: str  # "Multi" | "Single"
    platform: str  # "GPU" | "ASIC"
    qps_by_workload: dict

    def qps(self, workload: str) -> float | None:
        return self.qps_by_workload.get(workload)


CIP_PIR = ReportedSystem(
    name="CIP-PIR",
    server_config="Multi",
    platform="GPU",
    qps_by_workload={"Synth-4GB": 33.2, "Synth-8GB": 16.0},
)

DPF_PIR = ReportedSystem(
    name="DPF-PIR",
    server_config="Multi",
    platform="GPU",
    qps_by_workload={"Synth-2GB": 956.0, "Synth-4GB": 466.0, "Synth-8GB": 225.0},
)

INSPIRE = ReportedSystem(
    name="INSPIRE",
    server_config="Single",
    platform="ASIC",
    qps_by_workload={"Vcall": 0.021, "Comm": 0.028, "Fsys": 0.006},
)

#: INSPIRE's single-query latency on the Comm workload (Section VI-B):
#: 36 seconds to retrieve a 288 B entry from a 288 GB DB.
INSPIRE_COMM_LATENCY_S = 36.0

PRIOR_SYSTEMS = (CIP_PIR, DPF_PIR, INSPIRE)

#: Paper-reported IVE values for Table III (cluster: 16 systems, batch 128).
PAPER_IVE_QPS = {
    "Synth-2GB": 4261.0,
    "Synth-4GB": 2350.0,
    "Synth-8GB": 1242.0,
    "Vcall": 413.0,
    "Comm": 544.6,
    "Fsys": 127.5,
}

#: Paper-reported per-system speedups over INSPIRE.
PAPER_SPEEDUP_VS_INSPIRE = {"Vcall": 1229.0, "Comm": 1225.0, "Fsys": 1275.0}
