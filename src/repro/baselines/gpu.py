"""GPU baseline: OnionPIRv2 on RTX 4090 / H100 (Fig. 6, Fig. 12).

Each PIR step is timed as max(compute, memory) on a roofline device.  The
crucial modeling choice is *kernel-granular* memory traffic for
ExpandQuery and ColTor: a CUDA implementation runs each core function
(automorphism, iNTT, iCRT/extract, digit NTTs, gadget GEMM, element-wise
combine) as a kernel whose operands stream through global memory — GPUs
have no managed scratchpad to keep evks/RGSWs and intermediates resident
across kernels, which is exactly the gap IVE's RF + HS scheduling closes.
RowSel is a single fused GEMM kernel: one DB stream amortized over the
batch (Fig. 6's observation).

Constants are calibrated against Fig. 12's batched-GPU bars (IVE ends up
~15-19x over the best batched GPU, paper: 18.7x gmean).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import complexity
from repro.baselines.roofline import H100, RTX4090, RooflineDevice
from repro.params import PirParams

#: Fraction of roofline peaks a tuned CUDA implementation sustains.
DEFAULT_EFFICIENCY = 0.5
#: Extra global-memory traffic per kernel beyond the ideal operand bytes
#: (workspace double-buffering, uncoalesced twiddle/digit accesses).
KERNEL_TRAFFIC_OVERHEAD = 2.0


@dataclass(frozen=True)
class GpuStepTimes:
    """Per-step execution time for one batch (seconds)."""

    expand_s: float
    rowsel_s: float
    coltor_s: float
    batch: int

    @property
    def total_s(self) -> float:
        return self.expand_s + self.rowsel_s + self.coltor_s

    @property
    def qps(self) -> float:
        return self.batch / self.total_s

    @property
    def per_query_s(self) -> float:
        return self.total_s / self.batch

    def breakdown(self) -> dict[str, float]:
        return {
            "ExpandQuery": self.expand_s,
            "RowSel": self.rowsel_s,
            "ColTor": self.coltor_s,
        }


class GpuPirModel:
    """OnionPIR-style PIR on one GPU."""

    def __init__(
        self,
        device: RooflineDevice,
        params: PirParams,
        efficiency: float = DEFAULT_EFFICIENCY,
        kernel_overhead: float = KERNEL_TRAFFIC_OVERHEAD,
    ):
        self.device = device
        self.params = params
        self.efficiency = efficiency
        self.kernel_overhead = kernel_overhead
        self._counts = complexity.pir_step_counts(params)

    # -- kernel-granular traffic (bytes per query) ---------------------------
    def subs_kernel_bytes(self) -> float:
        """Global-memory bytes one Subs moves across its kernel sequence."""
        p = self.params
        poly = p.poly_bytes
        ell = p.gadget_len
        auto = 4 * poly  # read + write the (a, b) pair
        intt = 2 * poly
        icrt = (1 + ell) * poly  # read a, write ℓ digit polys
        ntts = 2 * ell * poly
        gemm = (3 * ell + 2) * poly  # digits + evk (2ℓ) + output ct
        combine = 8 * poly  # two ct-level add/sub kernels
        return (auto + intt + icrt + ntts + gemm + combine) * self.kernel_overhead

    def cmux_kernel_bytes(self) -> float:
        """Global-memory bytes one ColTor node (⊡ + adds) moves."""
        p = self.params
        poly = p.poly_bytes
        ell = p.gadget_len
        diff = 6 * poly  # read two cts, write difference
        intt = 4 * poly
        icrt = (2 + 2 * ell) * poly
        ntts = 4 * ell * poly
        gemm = (6 * ell + 2) * poly  # digits + RGSW (4ℓ) + output
        accum = 6 * poly
        return (diff + intt + icrt + ntts + gemm + accum) * self.kernel_overhead

    def expand_traffic_bytes(self, batch: int) -> float:
        return batch * (self.params.d0 - 1) * self.subs_kernel_bytes()

    def coltor_traffic_bytes(self, batch: int) -> float:
        nodes = (1 << self.params.num_dims) - 1
        return batch * nodes * self.cmux_kernel_bytes()

    def rowsel_traffic_bytes(self, batch: int) -> float:
        """One fused GEMM: DB streamed once, per-query cts negligible-ish."""
        p = self.params
        db_bytes = p.num_db_polys * p.poly_bytes
        ct_bytes = batch * (p.d0 + p.num_db_polys // p.d0) * p.ct_bytes
        return db_bytes + ct_bytes

    # -- capacity ---------------------------------------------------------
    @property
    def preprocessed_db_bytes(self) -> int:
        return self.params.num_db_polys * self.params.poly_bytes

    def per_query_working_bytes(self) -> int:
        """Resident state per in-flight query: keys + tree intermediates."""
        p = self.params
        return (
            p.num_evks * p.evk_bytes
            + p.num_dims * p.rgsw_bytes
            + (p.d0 + 3 * (p.num_db_polys // p.d0)) * p.ct_bytes
        )

    def max_batch(self) -> int:
        """Largest batch the device memory supports (0: DB does not fit)."""
        free = self.device.memory_capacity - self.preprocessed_db_bytes
        if free <= 0:
            return 0
        return max(0, int(free // self.per_query_working_bytes()))

    def supports(self, batch: int) -> bool:
        return batch <= self.max_batch()

    # -- timing -----------------------------------------------------------
    def step_times(self, batch: int) -> GpuStepTimes:
        eff = self.efficiency
        expand_s = self.device.time_seconds(
            self._counts["ExpandQuery"].total_mults * batch,
            self.expand_traffic_bytes(batch),
            eff,
        )
        rowsel_s = self.device.time_seconds(
            self._counts["RowSel"].total_mults * batch,
            self.rowsel_traffic_bytes(batch),
            eff,
        )
        coltor_s = self.device.time_seconds(
            self._counts["ColTor"].total_mults * batch,
            self.coltor_traffic_bytes(batch),
            eff,
        )
        return GpuStepTimes(
            expand_s=expand_s, rowsel_s=rowsel_s, coltor_s=coltor_s, batch=batch
        )

    def qps(self, batch: int | None = None) -> float:
        """Throughput at the given batch (default: the device maximum)."""
        if batch is None:
            batch = max(1, self.max_batch())
        return self.step_times(batch).qps

    def single_query_latency(self) -> float:
        return self.step_times(1).total_s

    def energy_per_query(self, batch: int | None = None) -> float:
        """TDP-scaled energy, the NVML-style accounting of Section VI-B."""
        if batch is None:
            batch = max(1, self.max_batch())
        times = self.step_times(batch)
        return self.device.tdp_watts * times.total_s / batch


def best_gpu_batched_qps(params: PirParams) -> tuple[str, float]:
    """The strongest batched GPU baseline for Fig. 12's comparison."""
    best_name, best_qps = "", 0.0
    for device in (RTX4090, H100):
        model = GpuPirModel(device, params)
        if model.max_batch() >= 1:
            q = model.qps()
            if q > best_qps:
                best_name, best_qps = device.name, q
    return best_name, best_qps
