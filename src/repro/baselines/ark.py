"""ARK-like HE-accelerator comparison (Section VI-E, Fig. 14a).

The ARK-like system shares IVE's process/clock and total NTT throughput
but maps GEMM onto its multiply-add units and has 2 MB of scratchpad per
core.  This module packages the delay/energy/area triple for both systems
so Fig. 14a (and the 9.7x EDAP claim) can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.area import area
from repro.arch.config import IveConfig
from repro.arch.energy import batch_energy, edap
from repro.arch.simulator import IveSimulator
from repro.params import PirParams


@dataclass(frozen=True)
class SystemCost:
    """Delay / energy / area of one design on one workload."""

    name: str
    delay_s: float
    energy_per_query_j: float
    area_mm2: float

    @property
    def edap(self) -> float:
        return edap(self.energy_per_query_j, self.delay_s, self.area_mm2)


def system_cost(config: IveConfig, params: PirParams, batch: int = 64) -> SystemCost:
    sim = IveSimulator(config, params)
    lat = sim.latency(batch)
    eb = batch_energy(sim, batch)
    return SystemCost(
        name=config.name,
        delay_s=lat.total_s,
        energy_per_query_j=eb.joules_per_query,
        area_mm2=area(config).total,
    )


def figure14a(params: PirParams, batch: int = 64) -> dict[str, SystemCost]:
    """IVE vs ARK-like on the 16 GB database (paper: 4.2x delay, 2.4x energy,
    comparable area, 9.7x EDAP)."""
    return {
        "IVE": system_cost(IveConfig.ive(), params, batch),
        "ARK-like": system_cost(IveConfig.ark_like(), params, batch),
    }
