"""Roofline device models (Fig. 6): peak integer throughput vs bandwidth."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RooflineDevice:
    """A device characterized by peak int-mult throughput and DRAM bandwidth."""

    name: str
    peak_mult_ops: float  # 32-bit integer multiply ops per second
    mem_bandwidth: float  # bytes per second
    memory_capacity: int  # bytes of device memory
    tdp_watts: float

    @property
    def ridge_intensity(self) -> float:
        """Ops/byte where the device turns compute-bound."""
        return self.peak_mult_ops / self.mem_bandwidth

    def attainable_ops(self, intensity: float) -> float:
        """Classic roofline: min(peak, intensity * bandwidth)."""
        return min(self.peak_mult_ops, intensity * self.mem_bandwidth)

    def time_seconds(self, ops: float, dram_bytes: float, efficiency: float = 1.0) -> float:
        """Execution time bounded by the slower of compute and memory."""
        return max(
            ops / (self.peak_mult_ops * efficiency),
            dram_bytes / (self.mem_bandwidth * efficiency),
        )


#: RTX 4090 as characterized in Fig. 6 (41.3 TOPS int mult, 939 GB/s).
RTX4090 = RooflineDevice(
    name="RTX 4090",
    peak_mult_ops=41.3e12,
    mem_bandwidth=939e9,
    memory_capacity=24 << 30,
    tdp_watts=450.0,
)

#: H100 SXM: ~66.9 TOPS int32 via INT32 pipes, 3.35 TB/s HBM3, 80 GB.
H100 = RooflineDevice(
    name="H100",
    peak_mult_ops=66.9e12,
    mem_bandwidth=3350e9,
    memory_capacity=80 << 30,
    tdp_watts=700.0,
)
