"""Baseline performance models: CPU, GPU, ARK-like, and reported numbers."""

from repro.baselines.ark import SystemCost, figure14a, system_cost
from repro.baselines.cpu import CpuModel
from repro.baselines.gpu import GpuPirModel, GpuStepTimes, best_gpu_batched_qps
from repro.baselines.other_schemes import (
    PAPER_TABLE4,
    SchemeThroughput,
    kspir_cpu_qps,
    kspir_ive_qps,
    simplepir_cpu_qps,
    simplepir_ive_qps,
    table4,
)
from repro.baselines.reported import (
    CIP_PIR,
    DPF_PIR,
    INSPIRE,
    INSPIRE_COMM_LATENCY_S,
    PAPER_IVE_QPS,
    PAPER_SPEEDUP_VS_INSPIRE,
    PRIOR_SYSTEMS,
    ReportedSystem,
)
from repro.baselines.roofline import H100, RTX4090, RooflineDevice

__all__ = [
    "CIP_PIR",
    "CpuModel",
    "DPF_PIR",
    "GpuPirModel",
    "GpuStepTimes",
    "H100",
    "INSPIRE",
    "INSPIRE_COMM_LATENCY_S",
    "PAPER_IVE_QPS",
    "PAPER_SPEEDUP_VS_INSPIRE",
    "PAPER_TABLE4",
    "PRIOR_SYSTEMS",
    "RTX4090",
    "ReportedSystem",
    "RooflineDevice",
    "SchemeThroughput",
    "SystemCost",
    "best_gpu_batched_qps",
    "figure14a",
    "kspir_cpu_qps",
    "kspir_ive_qps",
    "simplepir_cpu_qps",
    "simplepir_ive_qps",
    "system_cost",
    "table4",
]
